#include "check/diagnostics.h"

#include <sstream>

namespace dcdo::check {
namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << "[" << SeverityName(severity) << "] t=" << time.ToSeconds()
      << "s ev=" << event_id << " " << invariant;
  if (!object.nil()) out << " obj=" << object.ToString();
  if (version.valid()) out << " v=" << version.ToString();
  out << ": " << message;
  return out.str();
}

std::string Diagnostic::ToJson() const {
  std::ostringstream out;
  out << "{\"severity\":\"" << SeverityName(severity) << "\""
      << ",\"invariant\":\"" << JsonEscape(invariant) << "\""
      << ",\"time_ns\":" << time.nanos()
      << ",\"event\":" << event_id
      << ",\"object\":\"" << (object.nil() ? "" : object.ToString()) << "\""
      << ",\"version\":\"" << (version.valid() ? version.ToString() : "")
      << "\""
      << ",\"message\":\"" << JsonEscape(message) << "\"}";
  return out.str();
}

void Diagnostics::Record(Diagnostic diagnostic) {
  entries_.push_back(std::move(diagnostic));
}

std::size_t Diagnostics::errors() const {
  std::size_t n = 0;
  for (const Diagnostic& d : entries_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t Diagnostics::warnings() const {
  std::size_t n = 0;
  for (const Diagnostic& d : entries_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

std::vector<const Diagnostic*> Diagnostics::For(
    std::string_view invariant) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : entries_) {
    if (d.invariant == invariant) out.push_back(&d);
  }
  return out;
}

std::string Diagnostics::DumpText() const {
  std::ostringstream out;
  for (const Diagnostic& d : entries_) out << d.ToString() << "\n";
  return out.str();
}

std::string Diagnostics::DumpJson() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << ",";
    out << entries_[i].ToJson();
  }
  out << "]";
  return out.str();
}

}  // namespace dcdo::check
