#include "check/check_context.h"

#include <utility>

namespace dcdo::check {
namespace {

// The process-current context. Plain atomic pointer: installation happens at
// testbed construction, lookup on every instrumented action.
std::atomic<CheckContext*> g_current{nullptr};

}  // namespace

CheckContext::CheckContext() : CheckContext(Options{}) {}

CheckContext::CheckContext(const Options& options)
    : options_(options), enabled_(options.enabled), races_(&diagnostics_) {
  RegisterBuiltinInvariants(*this);
}

CheckContext::~CheckContext() { Uninstall(); }

CheckContext* CheckContext::Current() {
  return g_current.load(std::memory_order_acquire);
}

void CheckContext::Install() {
  g_current.store(this, std::memory_order_release);
}

void CheckContext::Uninstall() {
  CheckContext* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

void CheckContext::AttachSimulation(sim::Simulation* simulation) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  simulation_ = simulation;
  if (simulation_ != nullptr) {
    simulation_->SetEventObserver([this](std::uint64_t) {
      if (enabled()) OnSimulationEvent();
    });
  }
}

void CheckContext::OnSimulationEvent() {
  if (options_.cadence == Cadence::kEndOfRun) return;
  std::uint64_t fired = simulation_ != nullptr ? simulation_->events_fired() : 0;
  if (options_.cadence == Cadence::kEveryN &&
      (options_.every_n == 0 || fired % options_.every_n != 0)) {
    return;
  }
  Evaluate();
}

void CheckContext::RegisterObject(const ObjectId& id, ObjectProbe probe) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // Seed the recorded version from the object's own report, so
  // version-monotonic has a causal baseline to compare against.
  if (probe) {
    ObjectStatusSnapshot snapshot = probe();
    recorded_versions_[id] = snapshot.version;
  }
  objects_[id] = std::move(probe);
}

void CheckContext::UnregisterObject(const ObjectId& id) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  objects_.erase(id);
  recorded_versions_.erase(id);
}

std::uint64_t CheckContext::RegisterBindingCache(CacheProbe probe) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::uint64_t handle = next_cache_handle_++;
  caches_[handle] = std::move(probe);
  return handle;
}

void CheckContext::UnregisterBindingCache(std::uint64_t handle) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  caches_.erase(handle);
}

void CheckContext::SetEndpointLiveness(EndpointLivenessFn fn) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  endpoint_liveness_ = std::move(fn);
}

void CheckContext::SetNetworkProbe(NetworkProbe probe) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  network_probe_ = std::move(probe);
}

void CheckContext::RegisterInvariant(Invariant invariant) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  invariants_.push_back(std::move(invariant));
}

void CheckContext::Evaluate() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // Invariants probe instrumented layers, whose accessors can re-enter hooks;
  // the guard stops recursive evaluation, the recursive mutex the deadlock.
  if (evaluating_) return;
  evaluating_ = true;
  ++evaluations_;
  for (const Invariant& invariant : invariants_) {
    invariant.check(*this);
  }
  evaluating_ = false;
}

void CheckContext::EvaluateAtEnd() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  at_end_ = true;
  Evaluate();
  at_end_ = false;
}

void CheckContext::Report(Diagnostic d) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::string key = d.invariant + "|" +
                    (d.object.nil() ? std::string() : d.object.ToString()) +
                    "|" + d.message;
  if (!races_.FirstReport(key)) return;
  diagnostics_.Record(std::move(d));
}

Stamp CheckContext::NowStamp() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  Stamp stamp;
  if (simulation_ != nullptr) {
    stamp.time = simulation_->Now();
    stamp.event_id = simulation_->events_fired();
  }
  stamp.lamport = ++lamport_;
  return stamp;
}

void CheckContext::OnCallStart(const ObjectId& object,
                               const std::string& function,
                               const ObjectId& component) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  races_.OnCallStart(object, function, component, NowStamp());
}

void CheckContext::OnCallEnd(const ObjectId& object,
                             const std::string& function,
                             const ObjectId& component) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  races_.OnCallEnd(object, function, component, NowStamp());
}

void CheckContext::OnComponentRemoved(const ObjectId& object,
                                      const ObjectId& component, bool forced) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  races_.OnComponentRemoved(object, component, forced, NowStamp());
}

void CheckContext::OnImplSwapped(const ObjectId& object,
                                 const std::string& function,
                                 const ObjectId& from_component,
                                 const ObjectId& to_component,
                                 int active_on_from) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  races_.OnImplSwapped(object, function, from_component, to_component,
                       active_on_from, NowStamp());
}

void CheckContext::OnEvolveBegin(const ObjectId& object, const VersionId& from,
                                 const VersionId& to) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  races_.OnEvolveBegin(object, from, to, NowStamp());
}

void CheckContext::OnVersionChanged(const ObjectId& object,
                                    const VersionId& from,
                                    const VersionId& to) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  races_.OnVersionChanged(object, from, to, NowStamp());
  // Advance the causal record: this is the one legal way a version moves.
  recorded_versions_[object] = to;
}

void CheckContext::OnEvolveEnd(const ObjectId& object, bool ok) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  races_.OnEvolveEnd(object, ok, NowStamp());
}

void CheckContext::OnEndpointOpened(std::uint32_t node, std::uint64_t pid,
                                    std::uint64_t epoch) {
  (void)epoch;
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  closed_endpoints_.erase({node, pid});
}

void CheckContext::OnEndpointClosed(std::uint32_t node, std::uint64_t pid) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  closed_endpoints_.insert({node, pid});
}

void CheckContext::OnBindingRefreshed(const ObjectId& object,
                                      std::uint32_t node, std::uint64_t pid,
                                      std::uint64_t epoch) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // A refresh that lands on a dead address the checker has never seen closed
  // is incoherent immediately: the agent handed out an address that cannot
  // carry an invocation and no stale-binding fault will explain it.
  if (!EndpointLive(node, pid, epoch) && !EndpointWasClosed(node, pid)) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.invariant = "binding-coherence";
    Stamp stamp = NowStamp();
    d.time = stamp.time;
    d.event_id = stamp.event_id;
    d.object = object;
    d.message = "binding refresh for " + object.ToString() +
                " installed address node=" + std::to_string(node) +
                " pid=" + std::to_string(pid) +
                " epoch=" + std::to_string(epoch) +
                " which is not a live endpoint and was never retired: no "
                "stale-binding fault can explain it";
    Report(std::move(d));
  }
}

void CheckContext::Note(const std::string& source, const std::string& message) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  Diagnostic d;
  d.severity = Severity::kInfo;
  d.invariant = source;
  Stamp stamp = NowStamp();
  d.time = stamp.time;
  d.event_id = stamp.event_id;
  d.message = message;
  diagnostics_.Record(std::move(d));
}

bool CheckContext::EndpointWasClosed(std::uint32_t node,
                                     std::uint64_t pid) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return closed_endpoints_.contains({node, pid});
}

bool CheckContext::EndpointLive(std::uint32_t node, std::uint64_t pid,
                                std::uint64_t epoch) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!endpoint_liveness_) return true;  // no transport attached: trust it
  return endpoint_liveness_(node, pid, epoch);
}

std::vector<ObjectId> CheckContext::RegisteredObjects() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [id, probe] : objects_) out.push_back(id);
  return out;
}

bool CheckContext::Probe(const ObjectId& id, ObjectStatusSnapshot* out) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = objects_.find(id);
  if (it == objects_.end() || !it->second) return false;
  *out = it->second();
  return true;
}

std::vector<CacheEntrySnapshot> CheckContext::ProbeCaches() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<CacheEntrySnapshot> out;
  for (const auto& [handle, probe] : caches_) {
    if (!probe) continue;
    std::vector<CacheEntrySnapshot> entries = probe();
    out.insert(out.end(), entries.begin(), entries.end());
  }
  return out;
}

bool CheckContext::ProbeNetwork(NetworkCounters* out) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!network_probe_) return false;
  *out = network_probe_();
  return true;
}

bool CheckContext::RecordedVersion(const ObjectId& id, VersionId* out) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = recorded_versions_.find(id);
  if (it == recorded_versions_.end()) return false;
  *out = it->second;
  return true;
}

}  // namespace dcdo::check
