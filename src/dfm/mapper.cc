#include "dfm/mapper.h"

#include <mutex>

#include "check/check_context.h"

namespace dcdo {

// The body never changes after construction (RemapBodies builds a fresh
// record), so in-flight guards may read it without synchronization. The
// counter lives behind its own shared_ptr so RemapBodies can carry it over
// into the replacement record: remapping does not end in-flight calls, and
// their active counts must keep showing up in ActiveCount/TotalActive.
struct DfmImplShared {
  DfmImplShared(DynamicFn fn, std::shared_ptr<std::atomic<int>> counter)
      : body(std::move(fn)), active(std::move(counter)) {}
  const DynamicFn body;
  const std::shared_ptr<std::atomic<int>> active;
};

namespace {
const std::string& EmptyName() {
  static const std::string empty;
  return empty;
}
}  // namespace

DynamicFunctionMapper::CallGuard& DynamicFunctionMapper::CallGuard::operator=(
    CallGuard&& other) noexcept {
  if (this != &other) {
    Release();
    mapper_ = other.mapper_;
    name_ = other.name_;
    function_id_ = other.function_id_;
    component_ = other.component_;
    impl_ = std::move(other.impl_);
    other.mapper_ = nullptr;
  }
  return *this;
}

const DynamicFn& DynamicFunctionMapper::CallGuard::body() const {
  return impl_->body;
}

const std::string& DynamicFunctionMapper::CallGuard::function() const {
  return name_ != nullptr ? *name_ : EmptyName();
}

void DynamicFunctionMapper::CallGuard::ReleaseSlow() {
  DynamicFunctionMapper* mapper = mapper_;
  mapper_ = nullptr;
  // Close the checker's ledger entry *before* dropping the active count: a
  // configuration change that observes the count at zero must also find the
  // invocation already ended, or a quiescence-respecting removal would be
  // misreported as overlapping a live call.
  if (!mapper->check_owner_.nil()) {
    DCDO_CHECK_HOOK(OnCallEnd(mapper->check_owner_, *name_, component_));
  }
  // Lock-free: the guard owns a reference to its implementation record,
  // which outlives even a forced removal of the component.
  impl_->active->fetch_sub(1, std::memory_order_acq_rel);
  impl_.reset();
}

DynamicFunctionMapper::AcquireReject DynamicFunctionMapper::TryAcquireLocked(
    const Slot* slot, FunctionId id, CallOrigin origin, CallGuard& guard) {
  if (slot == nullptr || !slot->any_present) return AcquireReject::kMissing;
  if (!slot->enabled) return AcquireReject::kDisabled;
  if (origin == CallOrigin::kExternal &&
      slot->visibility != Visibility::kExported) {
    return AcquireReject::kNotExported;
  }
  if (slot->impl == nullptr) return AcquireReject::kNoBody;
  // The hot path: one increment on the impl's counter plus one shared_ptr
  // refcount bump; no string is copied or allocated.
  slot->impl->active->fetch_add(1, std::memory_order_acq_rel);
  calls_resolved_.fetch_add(1, std::memory_order_relaxed);
  guard.mapper_ = this;
  guard.name_ = slot->name;
  guard.function_id_ = id;
  guard.component_ = slot->component;
  guard.impl_ = slot->impl;
  return AcquireReject::kNone;
}

Status DynamicFunctionMapper::RejectError(AcquireReject reject,
                                          std::string_view name) {
  std::string quoted(name);
  switch (reject) {
    case AcquireReject::kDisabled:
      return FunctionDisabledError("'" + quoted + "' is disabled");
    case AcquireReject::kNotExported:
      // External callers cannot tell internal-only from absent.
      return FunctionMissingError("no exported function '" + quoted + "'");
    case AcquireReject::kNoBody:
      return InternalError("enabled '" + quoted + "' has no resolved body");
    case AcquireReject::kMissing:
    case AcquireReject::kNone:
    default:
      return FunctionMissingError("no implementation of '" + quoted + "'");
  }
}

Result<DynamicFunctionMapper::CallGuard> DynamicFunctionMapper::Acquire(
    std::string_view function, CallOrigin origin) {
  AcquireReject reject;
  CallGuard guard;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    // One hash probe against the mapper's own index — no round-trip through
    // the global intern table on the call path.
    auto it = name_index_.find(function);
    reject = it == name_index_.end()
                 ? AcquireReject::kMissing
                 : TryAcquireLocked(&slots_[it->second.value], it->second,
                                    origin, guard);
  }
  if (reject == AcquireReject::kNone) {
    if (!check_owner_.nil()) {
      DCDO_CHECK_HOOK(OnCallStart(check_owner_, *guard.name_,
                                  guard.component_));
    }
    return guard;
  }
  calls_rejected_.fetch_add(1, std::memory_order_relaxed);
  return RejectError(reject, function);
}

Result<DynamicFunctionMapper::CallGuard> DynamicFunctionMapper::Acquire(
    FunctionId function, CallOrigin origin) {
  AcquireReject reject;
  CallGuard guard;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const Slot* slot = function.valid() && function.value < slots_.size()
                           ? &slots_[function.value]
                           : nullptr;
    reject = TryAcquireLocked(slot, function, origin, guard);
  }
  if (reject == AcquireReject::kNone) {
    if (!check_owner_.nil()) {
      DCDO_CHECK_HOOK(OnCallStart(check_owner_, *guard.name_,
                                  guard.component_));
    }
    return guard;
  }
  calls_rejected_.fetch_add(1, std::memory_order_relaxed);
  return RejectError(reject,
                     function.valid()
                         ? std::string_view(
                               FunctionNameTable::Global().NameOf(function))
                         : std::string_view(EmptyName()));
}

void DynamicFunctionMapper::RebuildSlotsLocked() {
  // Derived from the authoritative DfmState: one slot per interned function
  // id, summarizing "who services a call to F" for the shared-lock readers.
  FunctionNameTable& names = FunctionNameTable::Global();
  for (Slot& slot : slots_) {
    slot = Slot{};
  }
  name_index_.clear();
  for (const DfmEntry* entry : state_.AllEntries()) {
    FunctionId id = names.Intern(entry->function.name);
    if (id.value >= slots_.size()) slots_.resize(id.value + 1);
    Slot& slot = slots_[id.value];
    slot.any_present = true;
    slot.name = &names.NameOf(id);
    name_index_.emplace(std::string_view(*slot.name), id);
    if (!entry->enabled) continue;
    slot.enabled = true;
    slot.visibility = entry->visibility;
    slot.component = entry->component;
    auto impl = impls_.find({entry->function.name, entry->component});
    if (impl != impls_.end()) slot.impl = impl->second;
  }
}

Status DynamicFunctionMapper::IncorporateComponent(
    const ImplementationComponent& meta, const NativeCodeRegistry& registry,
    sim::Architecture arch, bool auto_structural_deps) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!meta.type.CompatibleWith(arch)) {
    return ArchMismatchError(
        "component " + meta.name + " (" + meta.type.ToString() +
        ") is incompatible with host architecture " +
        std::string(sim::ArchitectureName(arch)));
  }
  // Resolve every symbol before mutating anything (all-or-nothing).
  std::map<DfmState::EntryKey, std::shared_ptr<DfmImplShared>> resolved;
  for (const FunctionImplDescriptor& fn : meta.functions) {
    DCDO_ASSIGN_OR_RETURN(DynamicFn body, registry.Resolve(fn.symbol, arch));
    resolved[{fn.function.name, meta.id}] = std::make_shared<DfmImplShared>(
        std::move(body), std::make_shared<std::atomic<int>>(0));
  }
  DCDO_RETURN_IF_ERROR(
      state_.IncorporateComponent(meta, auto_structural_deps));
  impls_.merge(resolved);
  RebuildSlotsLocked();
  BumpVersion();
  return Status::Ok();
}

Status DynamicFunctionMapper::RemoveComponent(const ObjectId& component,
                                              ActiveThreadPolicy policy) {
  bool had_active = false;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    for (const auto& [key, record] : impls_) {
      if (key.second != component) continue;
      int count = record->active->load(std::memory_order_acquire);
      if (count <= 0) continue;
      if (policy == ActiveThreadPolicy::kError) {
        return ActiveThreadsError("function '" + key.first +
                                  "' in component " + component.ToString() +
                                  " has " + std::to_string(count) +
                                  " active thread(s)");
      }
      had_active = true;
    }
    DCDO_RETURN_IF_ERROR(state_.RemoveComponent(component));
    std::erase_if(impls_, [&component](const auto& kv) {
      return kv.first.second == component;
    });
    RebuildSlotsLocked();
    BumpVersion();
  }
  if (!check_owner_.nil()) {
    // "forced" means the removal actually overrode live threads, not merely
    // that the caller passed kForce.
    DCDO_CHECK_HOOK(OnComponentRemoved(check_owner_, component, had_active));
  }
  return Status::Ok();
}

Status DynamicFunctionMapper::EnableFunction(const std::string& function,
                                             const ObjectId& component) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  DCDO_RETURN_IF_ERROR(state_.EnableFunction(function, component));
  RebuildSlotsLocked();
  BumpVersion();
  return Status::Ok();
}

Status DynamicFunctionMapper::DisableFunction(const std::string& function,
                                              const ObjectId& component,
                                              bool respect_active_dependents) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (respect_active_dependents) {
    EnabledSnapshot snapshot = state_.Snapshot();
    for (const Dependency* dep : state_.dependencies().BindingDependenciesOn(
             function, component, snapshot)) {
      // The dependent function is enabled; is a thread inside it right now?
      const std::string& dependent = dep->dependent;
      for (const auto& [key, record] : impls_) {
        if (key.first != dependent) continue;
        int count = record->active->load(std::memory_order_acquire);
        if (count <= 0) continue;
        if (dep->dependent_component.has_value() &&
            *dep->dependent_component != key.second) {
          continue;
        }
        return ActiveThreadsError(
            "cannot disable '" + function + "': dependent '" + dependent +
            "' has " + std::to_string(count) + " active thread(s) (" +
            dep->ToString() + ")");
      }
    }
  }
  DCDO_RETURN_IF_ERROR(state_.DisableFunction(function, component));
  RebuildSlotsLocked();
  BumpVersion();
  return Status::Ok();
}

Status DynamicFunctionMapper::SwitchImplementation(
    const std::string& function, const ObjectId& to_component) {
  ObjectId from_component;
  int active_on_from = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (const DfmEntry* enabled = state_.EnabledImpl(function)) {
      from_component = enabled->component;
      auto it = impls_.find({function, from_component});
      if (it != impls_.end()) {
        active_on_from = it->second->active->load(std::memory_order_acquire);
      }
    }
    DCDO_RETURN_IF_ERROR(state_.SwitchImplementation(function, to_component));
    RebuildSlotsLocked();
    BumpVersion();
  }
  if (!check_owner_.nil() && !from_component.nil() &&
      from_component != to_component) {
    DCDO_CHECK_HOOK(OnImplSwapped(check_owner_, function, from_component,
                                  to_component, active_on_from));
  }
  return Status::Ok();
}

Status DynamicFunctionMapper::SetVisibility(const std::string& function,
                                            const ObjectId& component,
                                            Visibility visibility) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  DCDO_RETURN_IF_ERROR(state_.SetVisibility(function, component, visibility));
  RebuildSlotsLocked();
  BumpVersion();
  return Status::Ok();
}

Status DynamicFunctionMapper::MarkMandatory(const std::string& function) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return state_.MarkMandatory(function);
}

Status DynamicFunctionMapper::MarkPermanent(const std::string& function,
                                            const ObjectId& component) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // MarkPermanent may switch the enabled implementation as a side effect.
  DCDO_RETURN_IF_ERROR(state_.MarkPermanent(function, component));
  RebuildSlotsLocked();
  BumpVersion();
  return Status::Ok();
}

Status DynamicFunctionMapper::AddDependency(Dependency dep) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return state_.AddDependency(std::move(dep));
}

Status DynamicFunctionMapper::RemoveDependency(const Dependency& dep) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return state_.RemoveDependency(dep);
}

Status DynamicFunctionMapper::AdoptConfiguration(const DfmState& target,
                                                 bool enforce_marks) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  DCDO_RETURN_IF_ERROR(state_.AdoptConfiguration(target, enforce_marks));
  RebuildSlotsLocked();
  BumpVersion();
  return Status::Ok();
}

Status DynamicFunctionMapper::SyncMetadata(const DfmState& target) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Whatever happens below, leave the slot table mirroring state_: a failed
  // sync may have applied some visibilities before erroring out.
  struct Resync {
    DynamicFunctionMapper* self;
    ~Resync() {
      self->RebuildSlotsLocked();
      self->BumpVersion();
    }
  } resync{this};
  // Precondition: component and entry sets match the target.
  if (state_.component_count() != target.component_count() ||
      state_.entry_count() != target.entry_count()) {
    return FailedPreconditionError(
        "SyncMetadata: entry/component sets do not match the target");
  }
  for (const DfmEntry* entry : target.AllEntries()) {
    const DfmEntry* mine =
        state_.FindEntry(entry->function.name, entry->component);
    if (mine == nullptr) {
      return FailedPreconditionError("SyncMetadata: missing entry for '" +
                                     entry->function.name + "'");
    }
    if (mine->enabled != entry->enabled) {
      return FailedPreconditionError(
          "SyncMetadata: enablement of '" + entry->function.name +
          "' does not match the target (apply the plan first)");
    }
  }
  // Rebuild metadata to match the target exactly. Visibility first, then
  // constraints, then dependencies (validated against the final snapshot).
  for (const DfmEntry* entry : target.AllEntries()) {
    DCDO_RETURN_IF_ERROR(state_.SetVisibility(
        entry->function.name, entry->component, entry->visibility));
  }
  for (const std::string& function : target.mandatory_functions()) {
    DCDO_RETURN_IF_ERROR(state_.MarkMandatory(function));
  }
  for (const DfmEntry* entry : target.AllEntries()) {
    if (entry->permanent) {
      DCDO_RETURN_IF_ERROR(
          state_.MarkPermanent(entry->function.name, entry->component));
    }
  }
  // Remove dependencies the target no longer has (collect first — removal
  // mutates the set being iterated).
  std::vector<Dependency> stale;
  for (const Dependency& dep : state_.dependencies().all()) {
    bool in_target = false;
    for (const Dependency& tdep : target.dependencies().all()) {
      if (tdep == dep) {
        in_target = true;
        break;
      }
    }
    if (!in_target) stale.push_back(dep);
  }
  for (const Dependency& dep : stale) {
    DCDO_RETURN_IF_ERROR(state_.RemoveDependency(dep));
  }
  for (const Dependency& dep : target.dependencies().all()) {
    DCDO_RETURN_IF_ERROR(state_.AddDependency(dep));
  }
  return Status::Ok();
}

Status DynamicFunctionMapper::RemapBodies(const NativeCodeRegistry& registry,
                                          sim::Architecture arch) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::map<DfmState::EntryKey, std::shared_ptr<DfmImplShared>> remapped;
  for (const ObjectId& component_id : state_.ComponentIds()) {
    const ImplementationComponent* meta = state_.FindComponent(component_id);
    if (!meta->type.CompatibleWith(arch)) {
      return ArchMismatchError("component " + meta->name + " (" +
                               meta->type.ToString() +
                               ") cannot be mapped on " +
                               std::string(sim::ArchitectureName(arch)));
    }
    for (const FunctionImplDescriptor& fn : meta->functions) {
      DCDO_ASSIGN_OR_RETURN(DynamicFn body, registry.Resolve(fn.symbol, arch));
      // Keep the existing counter: remapping does not end in-flight calls,
      // and their counts must survive into the replacement record.
      auto existing = impls_.find({fn.function.name, component_id});
      remapped[{fn.function.name, component_id}] =
          std::make_shared<DfmImplShared>(
              std::move(body),
              existing != impls_.end()
                  ? existing->second->active
                  : std::make_shared<std::atomic<int>>(0));
    }
  }
  impls_ = std::move(remapped);
  RebuildSlotsLocked();
  BumpVersion();
  return Status::Ok();
}

int DynamicFunctionMapper::ActiveCount(const std::string& function,
                                       const ObjectId& component) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = impls_.find({function, component});
  return it == impls_.end()
             ? 0
             : it->second->active->load(std::memory_order_acquire);
}

int DynamicFunctionMapper::TotalActive() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  int total = 0;
  for (const auto& [key, record] : impls_) {
    total += record->active->load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace dcdo
