#include "dfm/mapper.h"

#include "check/check_context.h"

namespace dcdo {

DynamicFunctionMapper::CallGuard& DynamicFunctionMapper::CallGuard::operator=(
    CallGuard&& other) noexcept {
  if (this != &other) {
    Release();
    mapper_ = other.mapper_;
    function_ = std::move(other.function_);
    component_ = other.component_;
    body_ = std::move(other.body_);
    other.mapper_ = nullptr;
  }
  return *this;
}

void DynamicFunctionMapper::CallGuard::Release() {
  if (mapper_ != nullptr) {
    mapper_->ReleaseCall(function_, component_);
    mapper_ = nullptr;
    body_ = nullptr;
  }
}

Result<DynamicFunctionMapper::CallGuard> DynamicFunctionMapper::Acquire(
    const std::string& function, CallOrigin origin) {
  CallGuard guard;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const DfmEntry* entry = state_.EnabledImpl(function);
    if (entry == nullptr) {
      ++calls_rejected_;
      if (state_.AnyImplPresent(function)) {
        return FunctionDisabledError("'" + function + "' is disabled");
      }
      return FunctionMissingError("no implementation of '" + function + "'");
    }
    if (origin == CallOrigin::kExternal &&
        entry->visibility != Visibility::kExported) {
      ++calls_rejected_;
      // External callers cannot tell internal-only from absent.
      return FunctionMissingError("no exported function '" + function + "'");
    }
    auto body_it = bodies_.find({function, entry->component});
    if (body_it == bodies_.end()) {
      ++calls_rejected_;
      return InternalError("enabled '" + function + "' has no resolved body");
    }
    ++calls_resolved_;
    ++active_[{function, entry->component}];

    guard.mapper_ = this;
    guard.function_ = function;
    guard.component_ = entry->component;
    guard.body_ = body_it->second;
  }
  if (!check_owner_.nil()) {
    DCDO_CHECK_HOOK(
        OnCallStart(check_owner_, guard.function_, guard.component_));
  }
  return guard;
}

void DynamicFunctionMapper::ReleaseCall(const std::string& function,
                                        const ObjectId& component) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = active_.find({function, component});
    if (it != active_.end() && it->second > 0) {
      --it->second;
    }
  }
  if (!check_owner_.nil()) {
    DCDO_CHECK_HOOK(OnCallEnd(check_owner_, function, component));
  }
}

Status DynamicFunctionMapper::IncorporateComponent(
    const ImplementationComponent& meta, const NativeCodeRegistry& registry,
    sim::Architecture arch, bool auto_structural_deps) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!meta.type.CompatibleWith(arch)) {
    return ArchMismatchError(
        "component " + meta.name + " (" + meta.type.ToString() +
        ") is incompatible with host architecture " +
        std::string(sim::ArchitectureName(arch)));
  }
  // Resolve every symbol before mutating anything (all-or-nothing).
  std::map<DfmState::EntryKey, DynamicFn> resolved;
  for (const FunctionImplDescriptor& fn : meta.functions) {
    DCDO_ASSIGN_OR_RETURN(DynamicFn body, registry.Resolve(fn.symbol, arch));
    resolved[{fn.function.name, meta.id}] = std::move(body);
  }
  DCDO_RETURN_IF_ERROR(
      state_.IncorporateComponent(meta, auto_structural_deps));
  bodies_.merge(resolved);
  return Status::Ok();
}

Status DynamicFunctionMapper::RemoveComponent(const ObjectId& component,
                                              ActiveThreadPolicy policy) {
  bool had_active = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, count] : active_) {
      if (key.second == component && count > 0) {
        if (policy == ActiveThreadPolicy::kError) {
          return ActiveThreadsError("function '" + key.first +
                                    "' in component " + component.ToString() +
                                    " has " + std::to_string(count) +
                                    " active thread(s)");
        }
        had_active = true;
      }
    }
    DCDO_RETURN_IF_ERROR(state_.RemoveComponent(component));
    std::erase_if(bodies_, [&component](const auto& kv) {
      return kv.first.second == component;
    });
    std::erase_if(active_, [&component](const auto& kv) {
      return kv.first.second == component;
    });
  }
  if (!check_owner_.nil()) {
    // "forced" means the removal actually overrode live threads, not merely
    // that the caller passed kForce.
    DCDO_CHECK_HOOK(OnComponentRemoved(check_owner_, component, had_active));
  }
  return Status::Ok();
}

Status DynamicFunctionMapper::EnableFunction(const std::string& function,
                                             const ObjectId& component) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.EnableFunction(function, component);
}

Status DynamicFunctionMapper::DisableFunction(const std::string& function,
                                              const ObjectId& component,
                                              bool respect_active_dependents) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (respect_active_dependents) {
    EnabledSnapshot snapshot = state_.Snapshot();
    for (const Dependency* dep : state_.dependencies().BindingDependenciesOn(
             function, component, snapshot)) {
      // The dependent function is enabled; is a thread inside it right now?
      const std::string& dependent = dep->dependent;
      for (const auto& [key, count] : active_) {
        if (key.first != dependent || count <= 0) continue;
        if (dep->dependent_component.has_value() &&
            *dep->dependent_component != key.second) {
          continue;
        }
        return ActiveThreadsError(
            "cannot disable '" + function + "': dependent '" + dependent +
            "' has " + std::to_string(count) + " active thread(s) (" +
            dep->ToString() + ")");
      }
    }
  }
  return state_.DisableFunction(function, component);
}

Status DynamicFunctionMapper::SwitchImplementation(
    const std::string& function, const ObjectId& to_component) {
  ObjectId from_component;
  int active_on_from = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const DfmEntry* enabled = state_.EnabledImpl(function)) {
      from_component = enabled->component;
      auto it = active_.find({function, from_component});
      if (it != active_.end()) active_on_from = it->second;
    }
    DCDO_RETURN_IF_ERROR(state_.SwitchImplementation(function, to_component));
  }
  if (!check_owner_.nil() && !from_component.nil() &&
      from_component != to_component) {
    DCDO_CHECK_HOOK(OnImplSwapped(check_owner_, function, from_component,
                                  to_component, active_on_from));
  }
  return Status::Ok();
}

Status DynamicFunctionMapper::SetVisibility(const std::string& function,
                                            const ObjectId& component,
                                            Visibility visibility) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.SetVisibility(function, component, visibility);
}

Status DynamicFunctionMapper::MarkMandatory(const std::string& function) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.MarkMandatory(function);
}

Status DynamicFunctionMapper::MarkPermanent(const std::string& function,
                                            const ObjectId& component) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.MarkPermanent(function, component);
}

Status DynamicFunctionMapper::AddDependency(Dependency dep) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.AddDependency(std::move(dep));
}

Status DynamicFunctionMapper::RemoveDependency(const Dependency& dep) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.RemoveDependency(dep);
}

Status DynamicFunctionMapper::AdoptConfiguration(const DfmState& target,
                                                 bool enforce_marks) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.AdoptConfiguration(target, enforce_marks);
}

Status DynamicFunctionMapper::SyncMetadata(const DfmState& target) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Precondition: component and entry sets match the target.
  if (state_.component_count() != target.component_count() ||
      state_.entry_count() != target.entry_count()) {
    return FailedPreconditionError(
        "SyncMetadata: entry/component sets do not match the target");
  }
  for (const DfmEntry* entry : target.AllEntries()) {
    const DfmEntry* mine =
        state_.FindEntry(entry->function.name, entry->component);
    if (mine == nullptr) {
      return FailedPreconditionError("SyncMetadata: missing entry for '" +
                                     entry->function.name + "'");
    }
    if (mine->enabled != entry->enabled) {
      return FailedPreconditionError(
          "SyncMetadata: enablement of '" + entry->function.name +
          "' does not match the target (apply the plan first)");
    }
  }
  // Rebuild metadata to match the target exactly. Visibility first, then
  // constraints, then dependencies (validated against the final snapshot).
  for (const DfmEntry* entry : target.AllEntries()) {
    DCDO_RETURN_IF_ERROR(state_.SetVisibility(
        entry->function.name, entry->component, entry->visibility));
  }
  for (const std::string& function : target.mandatory_functions()) {
    DCDO_RETURN_IF_ERROR(state_.MarkMandatory(function));
  }
  for (const DfmEntry* entry : target.AllEntries()) {
    if (entry->permanent) {
      DCDO_RETURN_IF_ERROR(
          state_.MarkPermanent(entry->function.name, entry->component));
    }
  }
  // Remove dependencies the target no longer has (collect first — removal
  // mutates the set being iterated).
  std::vector<Dependency> stale;
  for (const Dependency& dep : state_.dependencies().all()) {
    bool in_target = false;
    for (const Dependency& tdep : target.dependencies().all()) {
      if (tdep == dep) {
        in_target = true;
        break;
      }
    }
    if (!in_target) stale.push_back(dep);
  }
  for (const Dependency& dep : stale) {
    DCDO_RETURN_IF_ERROR(state_.RemoveDependency(dep));
  }
  for (const Dependency& dep : target.dependencies().all()) {
    DCDO_RETURN_IF_ERROR(state_.AddDependency(dep));
  }
  return Status::Ok();
}

Status DynamicFunctionMapper::RemapBodies(const NativeCodeRegistry& registry,
                                          sim::Architecture arch) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<DfmState::EntryKey, DynamicFn> remapped;
  for (const ObjectId& component_id : state_.ComponentIds()) {
    const ImplementationComponent* meta = state_.FindComponent(component_id);
    if (!meta->type.CompatibleWith(arch)) {
      return ArchMismatchError("component " + meta->name + " (" +
                               meta->type.ToString() +
                               ") cannot be mapped on " +
                               std::string(sim::ArchitectureName(arch)));
    }
    for (const FunctionImplDescriptor& fn : meta->functions) {
      DCDO_ASSIGN_OR_RETURN(DynamicFn body, registry.Resolve(fn.symbol, arch));
      remapped[{fn.function.name, component_id}] = std::move(body);
    }
  }
  bodies_ = std::move(remapped);
  return Status::Ok();
}

int DynamicFunctionMapper::ActiveCount(const std::string& function,
                                       const ObjectId& component) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find({function, component});
  return it == active_.end() ? 0 : it->second;
}

int DynamicFunctionMapper::TotalActive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int total = 0;
  for (const auto& [key, count] : active_) total += count;
  return total;
}

}  // namespace dcdo
