#include "dfm/descriptor.h"

namespace dcdo {

Status DfmDescriptor::CheckConfigurable() const {
  if (instantiable_) {
    return VersionFrozenError("version " + version_.ToString() +
                              " is instantiable and cannot be configured");
  }
  return Status::Ok();
}

Status DfmDescriptor::IncorporateComponent(const ImplementationComponent& meta,
                                           bool auto_structural_deps) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.IncorporateComponent(meta, auto_structural_deps);
}

Status DfmDescriptor::RemoveComponent(const ObjectId& component) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.RemoveComponent(component);
}

Status DfmDescriptor::EnableFunction(const std::string& function,
                                     const ObjectId& component) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.EnableFunction(function, component);
}

Status DfmDescriptor::DisableFunction(const std::string& function,
                                      const ObjectId& component) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.DisableFunction(function, component);
}

Status DfmDescriptor::SwitchImplementation(const std::string& function,
                                           const ObjectId& to_component) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.SwitchImplementation(function, to_component);
}

Status DfmDescriptor::SetVisibility(const std::string& function,
                                    const ObjectId& component,
                                    Visibility visibility) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.SetVisibility(function, component, visibility);
}

Status DfmDescriptor::MarkMandatory(const std::string& function) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.MarkMandatory(function);
}

Status DfmDescriptor::MarkPermanent(const std::string& function,
                                    const ObjectId& component) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.MarkPermanent(function, component);
}

Status DfmDescriptor::AddDependency(Dependency dep) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.AddDependency(std::move(dep));
}

Status DfmDescriptor::RemoveDependency(const Dependency& dep) {
  DCDO_RETURN_IF_ERROR(CheckConfigurable());
  return state_.RemoveDependency(dep);
}

Status DfmDescriptor::MarkInstantiable() {
  if (instantiable_) return Status::Ok();  // idempotent
  DCDO_RETURN_IF_ERROR(state_.ValidateComplete());
  instantiable_ = true;
  return Status::Ok();
}

DfmDescriptor DfmDescriptor::DeriveChild(const VersionId& child_version) const {
  DfmDescriptor child(child_version);
  child.state_ = state_;       // logical copy
  child.instantiable_ = false; // the copy is configurable
  return child;
}

EvolutionPlan ComputePlan(const DfmState& from, const DfmState& to) {
  EvolutionPlan plan;
  for (const ObjectId& id : to.ComponentIds()) {
    if (!from.HasComponent(id)) {
      plan.incorporate.push_back(*to.FindComponent(id));
    }
  }
  for (const ObjectId& id : from.ComponentIds()) {
    if (!to.HasComponent(id)) plan.remove.push_back(id);
  }
  // Enable/disable flips. For newly incorporated components, enables are
  // included too (incorporation leaves functions disabled); removals carry
  // their disables implicitly.
  for (const DfmEntry* entry : to.AllEntries()) {
    if (!entry->enabled) continue;
    const DfmEntry* before =
        from.FindEntry(entry->function.name, entry->component);
    if (before == nullptr || !before->enabled) {
      plan.enable.push_back({entry->function.name, entry->component});
    }
  }
  for (const DfmEntry* entry : from.AllEntries()) {
    if (!entry->enabled) continue;
    if (!to.HasComponent(entry->component)) continue;  // removal handles it
    const DfmEntry* after =
        to.FindEntry(entry->function.name, entry->component);
    if (after == nullptr || !after->enabled) {
      plan.disable.push_back({entry->function.name, entry->component});
    }
  }
  return plan;
}

}  // namespace dcdo
