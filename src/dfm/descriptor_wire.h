// Wire form of DFM descriptors.
//
// A DCDO Manager configures the objects under its control by shipping them
// DFM descriptors — when a DCDO "is created, when it migrates to a host, or
// when it evolves to a new version" (Section 2.4). This is the marshaled
// representation: the version id, the instantiable flag, every incorporated
// component's metadata, every (function, component) row's flags, the
// mandatory set, and the dependency set.
//
// Parsing *reconstructs* the descriptor through its public configuration
// operations, so a corrupted or inconsistent wire image is rejected by the
// same validation that guards live configuration — there is no backdoor that
// bypasses the model's invariants.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "dfm/descriptor.h"

namespace dcdo {

ByteBuffer SerializeDescriptor(const DfmDescriptor& descriptor);
[[nodiscard]] Result<DfmDescriptor> ParseDescriptor(const ByteBuffer& wire);

}  // namespace dcdo
