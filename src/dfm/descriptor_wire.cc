#include "dfm/descriptor_wire.h"

#include "common/serialize.h"

namespace dcdo {
namespace {

void WriteDependency(Writer& writer, const Dependency& dep) {
  writer.WriteU32(static_cast<std::uint32_t>(dep.kind));
  writer.WriteString(dep.dependent);
  writer.WriteBool(dep.dependent_component.has_value());
  if (dep.dependent_component) {
    writer.WriteObjectId(*dep.dependent_component);
  }
  writer.WriteString(dep.target);
  writer.WriteBool(dep.target_component.has_value());
  if (dep.target_component) {
    writer.WriteObjectId(*dep.target_component);
  }
}

Result<Dependency> ReadDependency(Reader& reader) {
  Dependency dep;
  DCDO_ASSIGN_OR_RETURN(std::uint32_t kind, reader.ReadU32());
  if (kind > static_cast<std::uint32_t>(DependencyKind::kTypeD)) {
    return InvalidArgumentError("bad dependency kind on the wire");
  }
  dep.kind = static_cast<DependencyKind>(kind);
  DCDO_ASSIGN_OR_RETURN(dep.dependent, reader.ReadString());
  DCDO_ASSIGN_OR_RETURN(bool has_c1, reader.ReadBool());
  if (has_c1) {
    DCDO_ASSIGN_OR_RETURN(ObjectId c1, reader.ReadObjectId());
    dep.dependent_component = c1;
  }
  DCDO_ASSIGN_OR_RETURN(dep.target, reader.ReadString());
  DCDO_ASSIGN_OR_RETURN(bool has_c2, reader.ReadBool());
  if (has_c2) {
    DCDO_ASSIGN_OR_RETURN(ObjectId c2, reader.ReadObjectId());
    dep.target_component = c2;
  }
  DCDO_RETURN_IF_ERROR(dep.Validate());
  return dep;
}

}  // namespace

ByteBuffer SerializeDescriptor(const DfmDescriptor& descriptor) {
  Writer writer;
  writer.WriteVersionId(descriptor.version());
  writer.WriteBool(descriptor.instantiable());
  const DfmState& state = descriptor.state();

  std::vector<ObjectId> components = state.ComponentIds();
  writer.WriteU64(components.size());
  for (const ObjectId& id : components) {
    writer.WriteBytes(SerializeComponentMeta(*state.FindComponent(id)));
  }

  std::vector<const DfmEntry*> entries = state.AllEntries();
  writer.WriteU64(entries.size());
  for (const DfmEntry* entry : entries) {
    writer.WriteString(entry->function.name);
    writer.WriteObjectId(entry->component);
    writer.WriteU32(static_cast<std::uint32_t>(entry->visibility));
    writer.WriteBool(entry->enabled);
    writer.WriteBool(entry->permanent);
  }

  writer.WriteU64(state.mandatory_functions().size());
  for (const std::string& function : state.mandatory_functions()) {
    writer.WriteString(function);
  }

  writer.WriteU64(state.dependencies().size());
  for (const Dependency& dep : state.dependencies().all()) {
    WriteDependency(writer, dep);
  }
  return std::move(writer).Take();
}

Result<DfmDescriptor> ParseDescriptor(const ByteBuffer& wire) {
  Reader reader(wire);
  DCDO_ASSIGN_OR_RETURN(VersionId version, reader.ReadVersionId());
  DCDO_ASSIGN_OR_RETURN(bool instantiable, reader.ReadBool());
  DfmDescriptor descriptor(version);

  DCDO_ASSIGN_OR_RETURN(std::uint64_t component_count, reader.ReadU64());
  for (std::uint64_t i = 0; i < component_count; ++i) {
    DCDO_ASSIGN_OR_RETURN(ByteBuffer meta_wire, reader.ReadBytes());
    DCDO_ASSIGN_OR_RETURN(ImplementationComponent meta,
                          ParseComponentMeta(meta_wire));
    // Dependencies travel explicitly below; don't auto-derive.
    DCDO_RETURN_IF_ERROR(descriptor.IncorporateComponent(
        meta, /*auto_structural_deps=*/false));
  }

  struct Row {
    std::string function;
    ObjectId component;
    Visibility visibility;
    bool enabled;
    bool permanent;
  };
  DCDO_ASSIGN_OR_RETURN(std::uint64_t entry_count, reader.ReadU64());
  std::vector<Row> rows;
  rows.reserve(entry_count);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    Row row;
    DCDO_ASSIGN_OR_RETURN(row.function, reader.ReadString());
    DCDO_ASSIGN_OR_RETURN(row.component, reader.ReadObjectId());
    DCDO_ASSIGN_OR_RETURN(std::uint32_t visibility, reader.ReadU32());
    if (visibility > static_cast<std::uint32_t>(Visibility::kInternal)) {
      return InvalidArgumentError("bad visibility on the wire");
    }
    row.visibility = static_cast<Visibility>(visibility);
    DCDO_ASSIGN_OR_RETURN(row.enabled, reader.ReadBool());
    DCDO_ASSIGN_OR_RETURN(row.permanent, reader.ReadBool());
    rows.push_back(std::move(row));
  }
  // Apply in dependency-safe order: visibilities, enables, permanence.
  for (const Row& row : rows) {
    DCDO_RETURN_IF_ERROR(
        descriptor.SetVisibility(row.function, row.component, row.visibility));
  }
  for (const Row& row : rows) {
    if (row.enabled) {
      DCDO_RETURN_IF_ERROR(
          descriptor.EnableFunction(row.function, row.component));
    }
  }
  for (const Row& row : rows) {
    if (row.permanent) {
      DCDO_RETURN_IF_ERROR(
          descriptor.MarkPermanent(row.function, row.component));
    }
  }

  DCDO_ASSIGN_OR_RETURN(std::uint64_t mandatory_count, reader.ReadU64());
  for (std::uint64_t i = 0; i < mandatory_count; ++i) {
    DCDO_ASSIGN_OR_RETURN(std::string function, reader.ReadString());
    DCDO_RETURN_IF_ERROR(descriptor.MarkMandatory(function));
  }

  DCDO_ASSIGN_OR_RETURN(std::uint64_t dep_count, reader.ReadU64());
  for (std::uint64_t i = 0; i < dep_count; ++i) {
    DCDO_ASSIGN_OR_RETURN(Dependency dep, ReadDependency(reader));
    DCDO_RETURN_IF_ERROR(descriptor.AddDependency(std::move(dep)));
  }

  if (instantiable) {
    DCDO_RETURN_IF_ERROR(descriptor.MarkInstantiable());
  }
  return descriptor;
}

}  // namespace dcdo
