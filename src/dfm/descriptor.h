// DFM descriptors and evolution plans (paper Sections 2.4, 3).
//
// A DfmDescriptor is the manager-side definition of one version of an object
// type: a DfmState plus the version identifier and the instantiable /
// configurable distinction. "A configurable version ... can be evolved and
// configured, but it cannot be used to create a new DCDO, or to evolve an
// existing DCDO, until the version is marked instantiable"; conversely an
// instantiable version's descriptor is frozen. This is what lets the
// <DCDO Manager, Version Id> pair uniquely identify an implementation.
//
// An EvolutionPlan is the diff between two configurations — which components
// to incorporate or remove, and which enables/disables to flip. The DCDO
// applies a plan when it evolves; the plan's component list also drives the
// evolution-cost accounting (cached map vs. download per component).
#pragma once

#include <vector>

#include "common/status.h"
#include "common/version_id.h"
#include "dfm/state.h"

namespace dcdo {

class DfmDescriptor {
 public:
  DfmDescriptor() = default;
  explicit DfmDescriptor(VersionId version) : version_(std::move(version)) {}

  const VersionId& version() const { return version_; }
  bool instantiable() const { return instantiable_; }
  const DfmState& state() const { return state_; }

  // --- Configuration (all fail with kVersionFrozen once instantiable) ---
  [[nodiscard]] Status IncorporateComponent(const ImplementationComponent& meta,
                              bool auto_structural_deps = true);
  [[nodiscard]] Status RemoveComponent(const ObjectId& component);
  [[nodiscard]] Status EnableFunction(const std::string& function, const ObjectId& component);
  [[nodiscard]] Status DisableFunction(const std::string& function,
                         const ObjectId& component);
  [[nodiscard]] Status SwitchImplementation(const std::string& function,
                              const ObjectId& to_component);
  [[nodiscard]] Status SetVisibility(const std::string& function, const ObjectId& component,
                       Visibility visibility);
  [[nodiscard]] Status MarkMandatory(const std::string& function);
  [[nodiscard]] Status MarkPermanent(const std::string& function, const ObjectId& component);
  [[nodiscard]] Status AddDependency(Dependency dep);
  [[nodiscard]] Status RemoveDependency(const Dependency& dep);

  // Freezes the descriptor after full validation (mandatory functions have
  // enabled implementations, permanent impls enabled, dependencies hold).
  [[nodiscard]] Status MarkInstantiable();

  // A configurable copy of this descriptor under a new (child) version id —
  // the paper's "logically copying an existing instantiable one".
  DfmDescriptor DeriveChild(const VersionId& child_version) const;

 private:
  [[nodiscard]] Status CheckConfigurable() const;

  VersionId version_;
  bool instantiable_ = false;
  DfmState state_;
};

// The delta a DCDO must apply to move between two configurations.
struct EvolutionPlan {
  std::vector<ImplementationComponent> incorporate;  // full meta (for fetch)
  std::vector<ObjectId> remove;
  // Enables/disables among components present in both configurations.
  std::vector<DfmState::EntryKey> enable;
  std::vector<DfmState::EntryKey> disable;

  bool NeedsNewComponents() const { return !incorporate.empty(); }
  bool Empty() const {
    return incorporate.empty() && remove.empty() && enable.empty() &&
           disable.empty();
  }
  std::size_t TotalSteps() const {
    return incorporate.size() + remove.size() + enable.size() +
           disable.size();
  }
};

// Diff `from` -> `to`. Components present only in `to` are incorporated (and
// their `to`-enabled functions enabled); components present only in `from`
// are removed; shared components contribute enable/disable flips.
EvolutionPlan ComputePlan(const DfmState& from, const DfmState& to);

}  // namespace dcdo
