// DynamicFunctionMapper: the runtime DFM inside every DCDO (paper Section 2).
//
// "A DFM serves as a centralized table through which all calls to dynamic
// functions must go." Callers never hold a raw function pointer across
// configuration changes; they Acquire() the ability to call a function, run
// the body, and release. Acquire is the single level of indirection the
// paper identifies as "the basis and the key enabler of dynamic
// configurability" — and also the hook for thread-activity monitoring: the
// returned RAII guard keeps the per-implementation active-thread count
// nonzero for exactly the duration of the call.
//
// The mapper owns a DfmState (the same table type managers use in
// descriptors) plus what only the runtime needs: resolved bodies from the
// NativeCodeRegistry, active-thread counts, and call statistics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "component/native_code_registry.h"
#include "dfm/descriptor.h"
#include "dfm/state.h"

namespace dcdo {

// Who is asking: external callers may only reach exported functions.
enum class CallOrigin : std::uint8_t { kExternal, kInternal };

// What to do when a configuration change collides with active threads
// (paper Section 3.2, thread activity monitoring): reject, or proceed
// anyway (the caller implements delay/timeout on top of kError).
enum class ActiveThreadPolicy : std::uint8_t { kError, kForce };

class DynamicFunctionMapper {
 public:
  DynamicFunctionMapper() = default;
  DynamicFunctionMapper(const DynamicFunctionMapper&) = delete;
  DynamicFunctionMapper& operator=(const DynamicFunctionMapper&) = delete;

  // RAII "ability to call": holds the body and pins the active-thread count.
  // The body remains valid for the guard's lifetime even if the function is
  // disabled mid-call — the paper notes "there is no reason why a thread
  // cannot proceed inside a deactivated function; the code still exists."
  class CallGuard {
   public:
    CallGuard() = default;
    CallGuard(CallGuard&& other) noexcept { *this = std::move(other); }
    CallGuard& operator=(CallGuard&& other) noexcept;
    CallGuard(const CallGuard&) = delete;
    CallGuard& operator=(const CallGuard&) = delete;
    ~CallGuard() { Release(); }

    const DynamicFn& body() const { return body_; }
    const ObjectId& component() const { return component_; }
    const std::string& function() const { return function_; }
    bool valid() const { return mapper_ != nullptr; }

    void Release();

   private:
    friend class DynamicFunctionMapper;
    DynamicFunctionMapper* mapper_ = nullptr;
    std::string function_;
    ObjectId component_;
    DynamicFn body_;
  };

  // --- The call path ---

  // Resolves `function` to its enabled implementation. Error taxonomy matches
  // the paper's problem classes: kFunctionMissing when no implementation is
  // present, kFunctionDisabled when implementations exist but none is
  // enabled, and kFunctionMissing for external calls to internal-only
  // functions (an outsider cannot distinguish "internal" from "absent").
  Result<CallGuard> Acquire(const std::string& function, CallOrigin origin);

  // --- Configuration (a DCDO's configuration functions land here) ---

  // Incorporates `meta`, resolving every symbol against `registry` for
  // `arch`. All-or-nothing: a single unresolved or arch-incompatible symbol
  // fails the whole incorporate.
  Status IncorporateComponent(const ImplementationComponent& meta,
                              const NativeCodeRegistry& registry,
                              sim::Architecture arch,
                              bool auto_structural_deps = true);

  // Removes a component. With kError, fails with kActiveThreads if any of
  // the component's implementations has a thread inside it (the
  // disappearing-component guard); kForce removes regardless.
  Status RemoveComponent(const ObjectId& component,
                         ActiveThreadPolicy policy = ActiveThreadPolicy::kError);

  Status EnableFunction(const std::string& function, const ObjectId& component);

  // Disables an implementation. When `respect_active_dependents`, the
  // disable is additionally rejected with kActiveThreads while any function
  // holding a binding dependency on this implementation is executing —
  // the paper's defence against the disappearing internal function problem.
  Status DisableFunction(const std::string& function, const ObjectId& component,
                         bool respect_active_dependents = true);

  Status SwitchImplementation(const std::string& function,
                              const ObjectId& to_component);
  Status SetVisibility(const std::string& function, const ObjectId& component,
                       Visibility visibility);
  Status MarkMandatory(const std::string& function);
  Status MarkPermanent(const std::string& function, const ObjectId& component);
  Status AddDependency(Dependency dep);
  Status RemoveDependency(const Dependency& dep);

  // Atomic wholesale move to `target`'s configuration (enabled flags,
  // visibility, marks, dependencies) after new components have been
  // incorporated; see DfmState::AdoptConfiguration for semantics.
  Status AdoptConfiguration(const DfmState& target, bool enforce_marks);

  // After an evolution plan has been applied, adopts the target
  // configuration's metadata wholesale: mandatory markings, permanent flags,
  // visibilities, and the dependency set. The entry/component sets must
  // already match the target; kFailedPrecondition otherwise.
  Status SyncMetadata(const DfmState& target);

  // Re-resolves every incorporated implementation against `registry` for a
  // (possibly different) architecture — the re-mapping step of migration.
  // Fails with kArchMismatch if any incorporated component has no build
  // usable on `arch`; the mapper is unchanged on failure.
  Status RemapBodies(const NativeCodeRegistry& registry,
                     sim::Architecture arch);

  // --- Status reporting ---

  const DfmState& state() const { return state_; }
  int ActiveCount(const std::string& function, const ObjectId& component) const;
  int TotalActive() const;
  std::uint64_t calls_resolved() const { return calls_resolved_; }
  std::uint64_t calls_rejected() const { return calls_rejected_; }

  // Names the DCDO this mapper belongs to for the checking layer; while set
  // (non-nil), call starts/ends, removals and implementation swaps are
  // reported to the installed CheckContext. Hooks fire after mutex_ is
  // released, so checker evaluations may call back into const accessors.
  void SetCheckOwner(const ObjectId& owner) { check_owner_ = owner; }
  const ObjectId& check_owner() const { return check_owner_; }

 private:
  void ReleaseCall(const std::string& function, const ObjectId& component);

  ObjectId check_owner_;  // nil: unowned (raw unit-test mappers), no hooks
  mutable std::mutex mutex_;
  DfmState state_;
  std::map<DfmState::EntryKey, DynamicFn> bodies_;
  std::map<DfmState::EntryKey, int> active_;
  std::uint64_t calls_resolved_ = 0;
  std::uint64_t calls_rejected_ = 0;
};

}  // namespace dcdo
