// DynamicFunctionMapper: the runtime DFM inside every DCDO (paper Section 2).
//
// "A DFM serves as a centralized table through which all calls to dynamic
// functions must go." Callers never hold a raw function pointer across
// configuration changes; they Acquire() the ability to call a function, run
// the body, and release. Acquire is the single level of indirection the
// paper identifies as "the basis and the key enabler of dynamic
// configurability" — and also the hook for thread-activity monitoring: the
// returned RAII guard keeps the per-implementation active-thread count
// nonzero for exactly the duration of the call.
//
// The call path is read-mostly and lock-light. Function names are interned
// into dense FunctionIds (function_id.h); the mapper keeps a flat slot table
// indexed by FunctionId whose slots hold the enabled body, its visibility,
// and a per-implementation atomic active-thread counter. Acquire on the hot
// path is a shared-lock slot read plus one relaxed atomic increment; Release
// is a single atomic decrement with no lock at all. Configuration mutations
// (incorporate / remove / enable / disable / switch / adopt / remap) take
// the exclusive side of the same std::shared_mutex, rebuild the slot table
// from the authoritative DfmState, and bump a version stamp. The paper's
// semantics are untouched: the error taxonomy (kFunctionMissing /
// kFunctionDisabled / kActiveThreads), the visibility rules, and the
// checker hooks all behave exactly as before — only the constant factor of
// the indirection changed.
//
// The mapper owns a DfmState (the same table type managers use in
// descriptors) plus what only the runtime needs: resolved bodies from the
// NativeCodeRegistry, active-thread counts, and call statistics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "component/native_code_registry.h"
#include "dfm/descriptor.h"
#include "dfm/function_id.h"
#include "dfm/state.h"

namespace dcdo {

// One incorporated implementation row: the resolved body plus its
// active-thread counter. Defined in mapper.cc; guards pin a whole record
// with a single shared_ptr, so acquire/release touch one refcount, not two.
struct DfmImplShared;

// Who is asking: external callers may only reach exported functions.
enum class CallOrigin : std::uint8_t { kExternal, kInternal };

// What to do when a configuration change collides with active threads
// (paper Section 3.2, thread activity monitoring): reject, or proceed
// anyway (the caller implements delay/timeout on top of kError).
enum class ActiveThreadPolicy : std::uint8_t { kError, kForce };

class DynamicFunctionMapper {
 public:
  DynamicFunctionMapper() = default;
  DynamicFunctionMapper(const DynamicFunctionMapper&) = delete;
  DynamicFunctionMapper& operator=(const DynamicFunctionMapper&) = delete;

  // RAII "ability to call": holds the body and pins the active-thread count.
  // The body remains valid for the guard's lifetime even if the function is
  // disabled — or its whole component force-removed — mid-call; the paper
  // notes "there is no reason why a thread cannot proceed inside a
  // deactivated function; the code still exists." The guard carries a slot
  // handle (interned-name pointer, one shared impl record), not owned
  // strings: constructing and destroying one allocates nothing.
  class CallGuard {
   public:
    CallGuard() = default;
    CallGuard(CallGuard&& other) noexcept { *this = std::move(other); }
    CallGuard& operator=(CallGuard&& other) noexcept;
    CallGuard(const CallGuard&) = delete;
    CallGuard& operator=(const CallGuard&) = delete;
    ~CallGuard() { Release(); }

    const DynamicFn& body() const;
    const ObjectId& component() const { return component_; }
    const std::string& function() const;
    FunctionId function_id() const { return function_id_; }
    bool valid() const { return mapper_ != nullptr; }

    // Returning a guard through Result<CallGuard> leaves a trail of
    // moved-from shells whose destructors all land here; keep the empty
    // check inline so only the one live guard pays the out-of-line release.
    void Release() {
      if (mapper_ != nullptr) ReleaseSlow();
    }

   private:
    friend class DynamicFunctionMapper;
    void ReleaseSlow();

    DynamicFunctionMapper* mapper_ = nullptr;
    const std::string* name_ = nullptr;  // interned; stable for process life
    FunctionId function_id_;
    ObjectId component_;
    // One refcount covers both the body and the active counter.
    std::shared_ptr<DfmImplShared> impl_;
  };

  // --- The call path ---

  // Resolves `function` to its enabled implementation. Error taxonomy matches
  // the paper's problem classes: kFunctionMissing when no implementation is
  // present, kFunctionDisabled when implementations exist but none is
  // enabled, and kFunctionMissing for external calls to internal-only
  // functions (an outsider cannot distinguish "internal" from "absent").
  [[nodiscard]] Result<CallGuard> Acquire(std::string_view function, CallOrigin origin);

  // The pre-resolved fast path: callers that hold an interned FunctionId
  // (method tables, proxies, repeated dispatch) skip the name lookup.
  [[nodiscard]] Result<CallGuard> Acquire(FunctionId function, CallOrigin origin);

  // --- Configuration (a DCDO's configuration functions land here) ---

  // Incorporates `meta`, resolving every symbol against `registry` for
  // `arch`. All-or-nothing: a single unresolved or arch-incompatible symbol
  // fails the whole incorporate.
  [[nodiscard]] Status IncorporateComponent(const ImplementationComponent& meta,
                              const NativeCodeRegistry& registry,
                              sim::Architecture arch,
                              bool auto_structural_deps = true);

  // Removes a component. With kError, fails with kActiveThreads if any of
  // the component's implementations has a thread inside it (the
  // disappearing-component guard); kForce removes regardless.
  [[nodiscard]] Status RemoveComponent(const ObjectId& component,
                         ActiveThreadPolicy policy = ActiveThreadPolicy::kError);

  [[nodiscard]] Status EnableFunction(const std::string& function, const ObjectId& component);

  // Disables an implementation. When `respect_active_dependents`, the
  // disable is additionally rejected with kActiveThreads while any function
  // holding a binding dependency on this implementation is executing —
  // the paper's defence against the disappearing internal function problem.
  [[nodiscard]] Status DisableFunction(const std::string& function, const ObjectId& component,
                         bool respect_active_dependents = true);

  [[nodiscard]] Status SwitchImplementation(const std::string& function,
                              const ObjectId& to_component);
  [[nodiscard]] Status SetVisibility(const std::string& function, const ObjectId& component,
                       Visibility visibility);
  [[nodiscard]] Status MarkMandatory(const std::string& function);
  [[nodiscard]] Status MarkPermanent(const std::string& function, const ObjectId& component);
  [[nodiscard]] Status AddDependency(Dependency dep);
  [[nodiscard]] Status RemoveDependency(const Dependency& dep);

  // Atomic wholesale move to `target`'s configuration (enabled flags,
  // visibility, marks, dependencies) after new components have been
  // incorporated; see DfmState::AdoptConfiguration for semantics.
  [[nodiscard]] Status AdoptConfiguration(const DfmState& target, bool enforce_marks);

  // After an evolution plan has been applied, adopts the target
  // configuration's metadata wholesale: mandatory markings, permanent flags,
  // visibilities, and the dependency set. The entry/component sets must
  // already match the target; kFailedPrecondition otherwise.
  [[nodiscard]] Status SyncMetadata(const DfmState& target);

  // Re-resolves every incorporated implementation against `registry` for a
  // (possibly different) architecture — the re-mapping step of migration.
  // Fails with kArchMismatch if any incorporated component has no build
  // usable on `arch`; the mapper is unchanged on failure.
  [[nodiscard]] Status RemapBodies(const NativeCodeRegistry& registry,
                     sim::Architecture arch);

  // --- Status reporting ---

  const DfmState& state() const { return state_; }
  int ActiveCount(const std::string& function, const ObjectId& component) const;
  int TotalActive() const;
  std::uint64_t calls_resolved() const {
    return calls_resolved_.load(std::memory_order_relaxed);
  }
  std::uint64_t calls_rejected() const {
    return calls_rejected_.load(std::memory_order_relaxed);
  }

  // Monotone stamp bumped by every successful configuration mutation; two
  // equal stamps bracket a window in which the slot table did not change.
  std::uint64_t table_version() const {
    return table_version_.load(std::memory_order_acquire);
  }

  // Names the DCDO this mapper belongs to for the checking layer; while set
  // (non-nil), call starts/ends, removals and implementation swaps are
  // reported to the installed CheckContext. Hooks fire after the table lock
  // is released, so checker evaluations may call back into const accessors.
  void SetCheckOwner(const ObjectId& owner) { check_owner_ = owner; }
  const ObjectId& check_owner() const { return check_owner_; }

 private:
  // The per-function slot the hot path reads: a digest of DfmState's answer
  // to "which implementation services a call to F right now". The impl
  // record (body + active counter, one shared allocation) lives behind a
  // shared_ptr so in-flight guards keep it alive across disables, switches,
  // and even forced removals.
  struct Slot {
    bool any_present = false;  // some implementation exists (disabled counts)
    bool enabled = false;      // an implementation is enabled
    Visibility visibility = Visibility::kExported;
    ObjectId component;                 // of the enabled implementation
    const std::string* name = nullptr;  // interned name
    std::shared_ptr<DfmImplShared> impl;  // enabled implementation's record
  };

  // Why Acquire declined, decided under the shared lock; the error message
  // (which allocates) is built only after the lock is dropped.
  enum class AcquireReject : std::uint8_t {
    kNone,
    kMissing,
    kDisabled,
    kNotExported,
    kNoBody,
  };

  // The shared-lock core of both Acquire overloads: classifies `slot` and,
  // on success, pins the implementation into `guard`.
  AcquireReject TryAcquireLocked(const Slot* slot, FunctionId id,
                                 CallOrigin origin, CallGuard& guard);
  [[nodiscard]] static Status RejectError(AcquireReject reject, std::string_view name);

  // Rebuilds slots_ from state_ + impls_. Caller holds the exclusive lock.
  void RebuildSlotsLocked();
  void BumpVersion() {
    table_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  ObjectId check_owner_;  // nil: unowned (raw unit-test mappers), no hooks
  mutable std::shared_mutex mutex_;
  DfmState state_;
  // Mutation-path store, keyed like DfmState rows; the hot path never
  // touches it — it reads the shared_ptrs out of slots_.
  std::map<DfmState::EntryKey, std::shared_ptr<DfmImplShared>> impls_;
  std::vector<Slot> slots_;  // indexed by FunctionId::value
  // Name-keyed entry to the slot table, so string Acquire pays one hash
  // lookup under the mapper's own shared lock instead of a second
  // lock/unlock round-trip through the global intern table. Keys view
  // interner storage, which is stable for the life of the process.
  std::unordered_map<std::string_view, FunctionId, FunctionNameHash>
      name_index_;
  std::atomic<std::uint64_t> table_version_{0};
  std::atomic<std::uint64_t> calls_resolved_{0};
  std::atomic<std::uint64_t> calls_rejected_{0};
};

}  // namespace dcdo
