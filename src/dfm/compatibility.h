// Interface-compatibility analysis between two configurations.
//
// Section 3.1 observes that evolution steps differ sharply in what they can
// break: "adding functions to a public interface, or changing the
// implementation of a function while keeping its signature the same do not
// cause problems ... clients' calls will not fail in the same way that they
// will if a dynamic function is removed from the interface." This module
// classifies a version transition along exactly those lines so managers and
// operators can tell a safe upgrade from one that will strand clients:
//
//   kIdentical      — exported interfaces match and every exported function
//                     keeps the same implementation;
//   kBehavioral     — same exported interface, but at least one exported
//                     function's implementation changed (sort/compare-style
//                     behaviour drift is possible, calls won't fail);
//   kExtension      — everything exported before is still exported with the
//                     same signature; new exported functions appeared;
//   kBreaking       — an exported function was removed, or its signature
//                     changed (clients holding the old interface can fail).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "dfm/state.h"

namespace dcdo {

enum class Compatibility : std::uint8_t {
  kIdentical,
  kBehavioral,
  kExtension,
  kBreaking,
};

std::string_view CompatibilityName(Compatibility compatibility);
std::ostream& operator<<(std::ostream& os, Compatibility compatibility);

struct CompatibilityReport {
  Compatibility level = Compatibility::kIdentical;
  // Exported functions present in `from` but absent (or re-signed) in `to`.
  std::vector<FunctionSignature> removed;
  std::vector<FunctionSignature> signature_changed;  // `from`-side signature
  // Newly exported functions.
  std::vector<FunctionSignature> added;
  // Exported functions whose enabled implementation moved to a different
  // component (same signature).
  std::vector<std::string> reimplemented;

  bool SafeForExistingClients() const {
    return level == Compatibility::kIdentical ||
           level == Compatibility::kBehavioral ||
           level == Compatibility::kExtension;
  }
  std::string Summary() const;
};

// Classifies the exported-interface transition `from` -> `to`.
CompatibilityReport ClassifyTransition(const DfmState& from,
                                       const DfmState& to);

}  // namespace dcdo
