// FunctionId: dense interned handles for dynamic-function names.
//
// The paper's DFM is "a centralized table through which all calls to dynamic
// functions must go" — which makes the cost of *finding the row* the cost of
// every call. String-keyed lookups pay hashing (or tree walks) and, worse,
// string copies on every acquire. Interning fixes the unit of work: a name is
// resolved to a dense FunctionId once (at incorporate time, at proxy-refresh
// time, at method-table registration), and the call path indexes a flat slot
// table with it.
//
// The table is process-global and append-only: ids are never reused, and the
// backing strings have stable addresses for the life of the process, so a
// `const std::string*` taken from NameOf() may be held across configuration
// changes (CallGuard does exactly this instead of copying the name per call).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dcdo {

// A dense handle for an interned function name. Value-comparable, hashable,
// and cheap to copy; kInvalid means "never interned" (and therefore: no DFM
// anywhere has ever seen the name).
struct FunctionId {
  static constexpr std::uint32_t kInvalidValue = 0xFFFFFFFFu;

  std::uint32_t value = kInvalidValue;

  static constexpr FunctionId Invalid() { return FunctionId{}; }
  bool valid() const { return value != kInvalidValue; }

  friend bool operator==(FunctionId, FunctionId) = default;
};

// Inline FNV-1a for function names. Names are short (tens of bytes), where
// the standard library's hash pays a non-inlined per-byte loop; this keeps
// the whole probe visible to the optimizer. Used by every name-keyed index
// on the call path.
struct FunctionNameHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// The process-global intern table. Read-mostly: Find() and NameOf() take a
// shared lock; Intern() upgrades to exclusive only when the name is new.
class FunctionNameTable {
 public:
  static FunctionNameTable& Global();

  // Returns the id for `name`, creating one if this is the first sighting.
  FunctionId Intern(std::string_view name);

  // Returns the id for `name`, or FunctionId::Invalid() if never interned.
  // Never allocates — safe on rejection paths that must stay cheap.
  FunctionId Find(std::string_view name) const;

  // The interned name. The reference is stable for the process lifetime.
  // `id` must be valid and in range.
  const std::string& NameOf(FunctionId id) const;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;  // deque: stable addresses across growth
  // Views point into names_, so the index never owns string storage twice.
  std::unordered_map<std::string_view, std::uint32_t, FunctionNameHash> index_;
};

}  // namespace dcdo

template <>
struct std::hash<dcdo::FunctionId> {
  std::size_t operator()(dcdo::FunctionId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
