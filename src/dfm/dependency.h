// Function dependencies (paper Section 3.2, "Function Dependencies").
//
// Four dependency kinds restrict how a DCDO may be reconfigured:
//
//   Type A  [F1,C1] -> [F2]     structural: if the impl of F1 in C1 is
//                               enabled, SOME impl of F2 must be enabled.
//   Type B  [F1,C1] -> [F2,C2]  behavioral: if the impl of F1 in C1 is
//                               enabled, the impl of F2 in C2 must be enabled.
//   Type C  [F1]    -> [F2,C2]  behavioral: if ANY impl of F1 is enabled, the
//                               impl of F2 in C2 must be enabled.
//   Type D  [F1]    -> [F2]     structural: if ANY impl of F1 is enabled,
//                               SOME impl of F2 must be enabled.
//
// Dependencies bind only while their head is enabled — disabling or removing
// the dependent function "retracts" the constraint, which is exactly what
// distinguishes dependencies from blanket mandatory/permanent markings.
#pragma once

#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"

namespace dcdo {

enum class DependencyKind : std::uint8_t { kTypeA, kTypeB, kTypeC, kTypeD };

std::string_view DependencyKindName(DependencyKind kind);

struct Dependency {
  DependencyKind kind = DependencyKind::kTypeD;
  std::string dependent;                     // F1
  std::optional<ObjectId> dependent_component;  // C1 (Types A, B)
  std::string target;                        // F2
  std::optional<ObjectId> target_component;  // C2 (Types B, C)

  static Dependency TypeA(std::string f1, ObjectId c1, std::string f2);
  static Dependency TypeB(std::string f1, ObjectId c1, std::string f2,
                          ObjectId c2);
  static Dependency TypeC(std::string f1, std::string f2, ObjectId c2);
  static Dependency TypeD(std::string f1, std::string f2);

  // Structural consistency of the record itself (the right optional fields
  // are present for the kind).
  [[nodiscard]] Status Validate() const;

  std::string ToString() const;

  friend bool operator==(const Dependency&, const Dependency&) = default;
};

std::ostream& operator<<(std::ostream& os, const Dependency& dep);

// What the dependency checker needs to know about a configuration: the set
// of enabled (function, component) implementations.
class EnabledSnapshot {
 public:
  void Enable(const std::string& function, const ObjectId& component) {
    enabled_.insert({function, component});
  }
  void Disable(const std::string& function, const ObjectId& component) {
    enabled_.erase({function, component});
  }
  bool IsEnabled(const std::string& function, const ObjectId& component) const {
    return enabled_.contains({function, component});
  }
  bool AnyEnabled(const std::string& function) const;
  std::size_t size() const { return enabled_.size(); }

 private:
  std::set<std::pair<std::string, ObjectId>> enabled_;
};

class DependencySet {
 public:
  // Duplicate dependencies are idempotently ignored.
  [[nodiscard]] Status Add(Dependency dep);
  // Exact-match removal; kNotFound if absent.
  [[nodiscard]] Status Remove(const Dependency& dep);

  const std::vector<Dependency>& all() const { return deps_; }
  std::size_t size() const { return deps_.size(); }

  // First violated dependency in `snapshot`, or OK. A dependency is violated
  // when its head condition holds but its target condition does not.
  [[nodiscard]] Status Validate(const EnabledSnapshot& snapshot) const;

  // True if some *currently binding* dependency (head enabled in `snapshot`)
  // has (function, component) — or any impl of `function` for structural
  // targets — as its target. Used by thread-activity policies: disabling a
  // depended-on implementation can be deferred while dependents are active.
  std::vector<const Dependency*> BindingDependenciesOn(
      const std::string& function, const ObjectId& component,
      const EnabledSnapshot& snapshot) const;

 private:
  static bool HeadHolds(const Dependency& dep, const EnabledSnapshot& snapshot);
  static bool TargetHolds(const Dependency& dep,
                          const EnabledSnapshot& snapshot);

  std::vector<Dependency> deps_;
};

}  // namespace dcdo
