#include "dfm/function_id.h"

#include <mutex>

namespace dcdo {

FunctionNameTable& FunctionNameTable::Global() {
  static FunctionNameTable table;
  return table;
}

FunctionId FunctionNameTable::Intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return FunctionId{it->second};
  }
  std::unique_lock lock(mutex_);
  auto it = index_.find(name);  // raced with another interner?
  if (it != index_.end()) return FunctionId{it->second};
  auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return FunctionId{id};
}

FunctionId FunctionNameTable::Find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = index_.find(name);
  return it == index_.end() ? FunctionId::Invalid() : FunctionId{it->second};
}

const std::string& FunctionNameTable::NameOf(FunctionId id) const {
  std::shared_lock lock(mutex_);
  return names_.at(id.value);
}

std::size_t FunctionNameTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

}  // namespace dcdo
