// DfmState: the configuration table shared by runtime DFMs and manager-side
// DFM descriptors.
//
// The paper notes that "a DFM descriptor's structure mirrors that of a DFM";
// we exploit that by implementing the table once. DfmState records which
// components are incorporated, which (function, component) implementations
// exist and are enabled/exported, the function-level mandatory markings,
// the implementation-level permanent markings, and the dependency set — and
// enforces every restriction of Section 3.2 on each mutation:
//
//   * at most one enabled implementation per function (the DFM maps a call
//     to THE implementation that services it),
//   * permanent implementations cannot be disabled, replaced, or removed,
//   * the last enabled implementation of a mandatory function cannot be
//     disabled, and its last present implementation cannot be removed,
//   * no mutation may leave a binding dependency (Types A-D) violated,
//   * two components cannot both carry a permanent implementation of the
//     same function (the paper's incorporate-conflict rule).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "component/component.h"
#include "dfm/dependency.h"

namespace dcdo {

// One (function, component) implementation row.
struct DfmEntry {
  FunctionSignature function;
  ObjectId component;
  Visibility visibility = Visibility::kExported;
  bool enabled = false;
  bool permanent = false;
  std::string symbol;
};

class DfmState {
 public:
  using EntryKey = std::pair<std::string, ObjectId>;  // (function, component)

  // --- Configuration functions (mirror a DCDO's external interface) ---

  // Adds all of `meta`'s function implementations, disabled. Honours the
  // component author's constraint markings: kMandatory marks the function
  // mandatory; kPermanent marks the impl permanent (and enables it, since a
  // permanent impl may never be disabled). If `auto_structural_deps`, the
  // component's `calls` hints become Type A dependencies.
  [[nodiscard]] Status IncorporateComponent(const ImplementationComponent& meta,
                              bool auto_structural_deps = true);

  // Removes the component and all its rows. Fails on permanent impls,
  // on mandatory functions whose only implementation lives here, and on
  // dependency violations.
  [[nodiscard]] Status RemoveComponent(const ObjectId& component);

  // Enables the (function, component) implementation. Fails if another
  // implementation of the function is already enabled (disable or Switch
  // first), or if enabling would leave the new configuration violating a
  // dependency (e.g. a Type A dep of this impl with no enabled target).
  [[nodiscard]] Status EnableFunction(const std::string& function,
                        const ObjectId& component);

  // Disables the implementation. Fails on permanent impls, on the last
  // enabled impl of a mandatory function, and on dependency violations.
  [[nodiscard]] Status DisableFunction(const std::string& function,
                         const ObjectId& component);

  // Atomically disables whichever impl of `function` is enabled (if any) and
  // enables the one in `to_component` — the paper's "change the
  // implementation of a function while keeping its signature the same".
  [[nodiscard]] Status SwitchImplementation(const std::string& function,
                              const ObjectId& to_component);

  // Changes an implementation's visibility (add to / remove from the public
  // interface without touching enablement).
  [[nodiscard]] Status SetVisibility(const std::string& function, const ObjectId& component,
                       Visibility visibility);

  // Constraint markings. Marks may only be strengthened: a mandatory function
  // stays mandatory in every configuration derived from this one.
  [[nodiscard]] Status MarkMandatory(const std::string& function);
  [[nodiscard]] Status MarkPermanent(const std::string& function, const ObjectId& component);

  [[nodiscard]] Status AddDependency(Dependency dep);
  [[nodiscard]] Status RemoveDependency(const Dependency& dep);

  // --- Status-reporting queries ---

  bool HasComponent(const ObjectId& component) const {
    return components_.contains(component);
  }
  const ImplementationComponent* FindComponent(const ObjectId& component) const;
  std::vector<ObjectId> ComponentIds() const;
  std::size_t component_count() const { return components_.size(); }

  const DfmEntry* FindEntry(const std::string& function,
                            const ObjectId& component) const;
  // The enabled implementation of `function`, if any.
  const DfmEntry* EnabledImpl(const std::string& function) const;
  bool AnyImplPresent(const std::string& function) const;
  bool IsMandatory(const std::string& function) const {
    return mandatory_.contains(function);
  }

  // Enabled + exported functions: what a client sees when it asks for the
  // object's interface.
  std::vector<FunctionSignature> ExportedInterface() const;
  // Every row (used to build diffs and by tests).
  std::vector<const DfmEntry*> AllEntries() const;
  std::size_t entry_count() const { return entries_.size(); }

  const DependencySet& dependencies() const { return deps_; }
  const std::set<std::string>& mandatory_functions() const {
    return mandatory_;
  }

  EnabledSnapshot Snapshot() const;

  // Wholesale adoption of `target`'s configuration during evolution, applied
  // atomically so legal version-to-version moves never trip over transient
  // orderings of individual enable/disable calls. Preconditions: every
  // target entry already exists here (incorporate new components first).
  // Entries absent from the target are disabled (they belong to components
  // about to be removed). Metadata (visibility, mandatory, permanent,
  // dependencies) is replaced by the target's.
  //
  // With `enforce_marks` (the increasing-version and hybrid policies), the
  // move is rejected if it would disable a currently-permanent
  // implementation or leave a currently-mandatory function without an
  // enabled implementation; marks are then carried forward (union). Without
  // it (the general-evolution policy), the target's marks replace the
  // current ones outright — the paper notes general evolution "undermines
  // the use of mandatory and permanent functions".
  [[nodiscard]] Status AdoptConfiguration(const DfmState& target, bool enforce_marks);

  // Full-configuration validation, required before a version may be marked
  // instantiable: every mandatory function has an enabled implementation,
  // every permanent implementation is enabled, and no binding dependency is
  // violated.
  [[nodiscard]] Status ValidateComplete() const;

  // Structural self-check for the checking layer (dfm-integrity invariant):
  // conditions every mutation path is supposed to preserve at every event
  // boundary, phrased as one string per anomaly. Unlike ValidateComplete
  // (which gates instantiability and may legitimately fail mid-build), an
  // anomaly here means table state no mutation sequence should produce:
  // two enabled implementations of one function, a permanent implementation
  // that is disabled, a mandatory function with no implementation present,
  // or a row referencing a component that is not incorporated.
  std::vector<std::string> CheckIntegrity() const;

 private:
  [[nodiscard]] Status ValidateMutation(const EnabledSnapshot& proposed) const;

  std::map<ObjectId, ImplementationComponent> components_;
  std::map<EntryKey, DfmEntry> entries_;
  std::set<std::string> mandatory_;
  DependencySet deps_;
};

}  // namespace dcdo
