#include "dfm/state.h"

namespace dcdo {

Status DfmState::IncorporateComponent(const ImplementationComponent& meta,
                                      bool auto_structural_deps) {
  DCDO_RETURN_IF_ERROR(meta.Validate());
  if (components_.contains(meta.id)) {
    return AlreadyExistsError("component " + meta.name + " (" +
                              meta.id.ToString() + ") already incorporated");
  }
  // The paper's incorporate-conflict rule: a component carrying a permanent
  // implementation of F cannot join a configuration that already has a
  // permanent implementation of F in another component.
  for (const FunctionImplDescriptor& fn : meta.functions) {
    if (fn.constraint != Constraint::kPermanent) continue;
    for (const auto& [key, entry] : entries_) {
      if (entry.function.name == fn.function.name && entry.permanent) {
        return PermanentViolationError(
            "component " + meta.name + " carries permanent '" +
            fn.function.name + "' but component " +
            entry.component.ToString() +
            " already holds a permanent implementation");
      }
    }
  }

  components_[meta.id] = meta;
  for (const FunctionImplDescriptor& fn : meta.functions) {
    DfmEntry entry;
    entry.function = fn.function;
    entry.component = meta.id;
    entry.visibility = fn.visibility;
    entry.symbol = fn.symbol;
    entry.enabled = false;
    entry.permanent = false;
    entries_[{fn.function.name, meta.id}] = std::move(entry);

    if (fn.constraint == Constraint::kMandatory) {
      mandatory_.insert(fn.function.name);
    }
  }
  // Permanent markings enable the impl (a permanent impl may never be
  // disabled, so it must be enabled) — done after all rows exist so the
  // dependency check sees the whole component.
  for (const FunctionImplDescriptor& fn : meta.functions) {
    if (fn.constraint != Constraint::kPermanent) continue;
    // Enabling can fail if another impl of the function is already enabled;
    // in that case incorporation must be rolled back.
    Status enabled = EnableFunction(fn.function.name, meta.id);
    if (!enabled.ok()) {
      // Roll back every row we added.
      for (const FunctionImplDescriptor& added : meta.functions) {
        entries_.erase({added.function.name, meta.id});
      }
      components_.erase(meta.id);
      return PermanentViolationError(
          "cannot incorporate " + meta.name + ": permanent '" +
          fn.function.name + "' could not be enabled: " + enabled.message());
    }
    entries_[{fn.function.name, meta.id}].permanent = true;
  }
  if (auto_structural_deps) {
    for (const FunctionImplDescriptor& fn : meta.functions) {
      for (const std::string& callee : fn.calls) {
        DCDO_RETURN_IF_ERROR(
            deps_.Add(Dependency::TypeA(fn.function.name, meta.id, callee)));
      }
    }
  }
  return Status::Ok();
}

Status DfmState::RemoveComponent(const ObjectId& component) {
  auto comp_it = components_.find(component);
  if (comp_it == components_.end()) {
    return ComponentMissingError("component " + component.ToString() +
                                 " not incorporated");
  }
  // Permanent implementations pin their component.
  for (const auto& [key, entry] : entries_) {
    if (entry.component != component) continue;
    if (entry.permanent) {
      return PermanentViolationError(
          "component " + comp_it->second.name + " holds permanent '" +
          entry.function.name + "' and cannot be removed");
    }
  }
  // A mandatory function must keep at least one implementation *present*.
  for (const auto& [key, entry] : entries_) {
    if (entry.component != component) continue;
    if (!mandatory_.contains(entry.function.name)) continue;
    bool other_impl = false;
    for (const auto& [key2, entry2] : entries_) {
      if (entry2.function.name == entry.function.name &&
          entry2.component != component) {
        other_impl = true;
        break;
      }
    }
    if (!other_impl) {
      return MandatoryViolationError(
          "removing component " + comp_it->second.name +
          " would leave mandatory '" + entry.function.name +
          "' with no implementation");
    }
  }
  // Dependencies: hypothetically disable everything in the component.
  EnabledSnapshot proposed = Snapshot();
  for (const auto& [key, entry] : entries_) {
    if (entry.component == component && entry.enabled) {
      proposed.Disable(entry.function.name, entry.component);
    }
  }
  DCDO_RETURN_IF_ERROR(ValidateMutation(proposed));

  std::erase_if(entries_, [&component](const auto& kv) {
    return kv.second.component == component;
  });
  components_.erase(comp_it);
  return Status::Ok();
}

Status DfmState::EnableFunction(const std::string& function,
                                const ObjectId& component) {
  auto it = entries_.find({function, component});
  if (it == entries_.end()) {
    return FunctionMissingError("no implementation of '" + function +
                                "' in component " + component.ToString());
  }
  if (it->second.enabled) return Status::Ok();  // idempotent
  if (const DfmEntry* current = EnabledImpl(function); current != nullptr) {
    return FailedPreconditionError(
        "'" + function + "' already enabled from component " +
        current->component.ToString() + "; disable it or use Switch");
  }
  EnabledSnapshot proposed = Snapshot();
  proposed.Enable(function, component);
  DCDO_RETURN_IF_ERROR(ValidateMutation(proposed));
  it->second.enabled = true;
  return Status::Ok();
}

Status DfmState::DisableFunction(const std::string& function,
                                 const ObjectId& component) {
  auto it = entries_.find({function, component});
  if (it == entries_.end()) {
    return FunctionMissingError("no implementation of '" + function +
                                "' in component " + component.ToString());
  }
  if (!it->second.enabled) return Status::Ok();  // idempotent
  if (it->second.permanent) {
    return PermanentViolationError("'" + function + "' in component " +
                                   component.ToString() + " is permanent");
  }
  if (mandatory_.contains(function)) {
    // Disabling is allowed only if this is not the last enabled impl —
    // which, given the one-enabled-impl invariant, it always is. A mandatory
    // function's impl can therefore only be *switched*, never plainly
    // disabled.
    return MandatoryViolationError("'" + function +
                                   "' is mandatory; switch implementations "
                                   "instead of disabling");
  }
  EnabledSnapshot proposed = Snapshot();
  proposed.Disable(function, component);
  DCDO_RETURN_IF_ERROR(ValidateMutation(proposed));
  it->second.enabled = false;
  return Status::Ok();
}

Status DfmState::SwitchImplementation(const std::string& function,
                                      const ObjectId& to_component) {
  auto to_it = entries_.find({function, to_component});
  if (to_it == entries_.end()) {
    return FunctionMissingError("no implementation of '" + function +
                                "' in component " + to_component.ToString());
  }
  const DfmEntry* current = EnabledImpl(function);
  if (current != nullptr && current->component == to_component) {
    return Status::Ok();  // already there
  }
  if (current != nullptr && current->permanent) {
    return PermanentViolationError("'" + function + "' in component " +
                                   current->component.ToString() +
                                   " is permanent and cannot be replaced");
  }
  EnabledSnapshot proposed = Snapshot();
  if (current != nullptr) proposed.Disable(function, current->component);
  proposed.Enable(function, to_component);
  DCDO_RETURN_IF_ERROR(ValidateMutation(proposed));
  if (current != nullptr) {
    entries_[{function, current->component}].enabled = false;
  }
  to_it->second.enabled = true;
  return Status::Ok();
}

Status DfmState::SetVisibility(const std::string& function,
                               const ObjectId& component,
                               Visibility visibility) {
  auto it = entries_.find({function, component});
  if (it == entries_.end()) {
    return FunctionMissingError("no implementation of '" + function +
                                "' in component " + component.ToString());
  }
  if (it->second.permanent && it->second.visibility != visibility) {
    return PermanentViolationError("'" + function +
                                   "' is permanent; its interface is frozen");
  }
  it->second.visibility = visibility;
  return Status::Ok();
}

Status DfmState::MarkMandatory(const std::string& function) {
  if (!AnyImplPresent(function)) {
    return FunctionMissingError("cannot mark unknown function '" + function +
                                "' mandatory");
  }
  mandatory_.insert(function);
  return Status::Ok();
}

Status DfmState::MarkPermanent(const std::string& function,
                               const ObjectId& component) {
  auto it = entries_.find({function, component});
  if (it == entries_.end()) {
    return FunctionMissingError("no implementation of '" + function +
                                "' in component " + component.ToString());
  }
  // Only one permanent implementation of a function may exist.
  for (const auto& [key, entry] : entries_) {
    if (entry.function.name == function && entry.permanent &&
        entry.component != component) {
      return PermanentViolationError(
          "'" + function + "' already permanent in component " +
          entry.component.ToString());
    }
  }
  // A permanent impl is frozen *enabled*; enable it now if necessary.
  if (!it->second.enabled) {
    DCDO_RETURN_IF_ERROR(SwitchImplementation(function, component));
  }
  it->second.permanent = true;
  return Status::Ok();
}

Status DfmState::AddDependency(Dependency dep) {
  DCDO_RETURN_IF_ERROR(dep.Validate());
  // Adding a dependency must not be retroactively violated by the current
  // configuration; check before committing.
  DependencySet trial = deps_;
  DCDO_RETURN_IF_ERROR(trial.Add(dep));
  DCDO_RETURN_IF_ERROR(trial.Validate(Snapshot()));
  deps_ = std::move(trial);
  return Status::Ok();
}

Status DfmState::RemoveDependency(const Dependency& dep) {
  return deps_.Remove(dep);
}

const ImplementationComponent* DfmState::FindComponent(
    const ObjectId& component) const {
  auto it = components_.find(component);
  return it == components_.end() ? nullptr : &it->second;
}

std::vector<ObjectId> DfmState::ComponentIds() const {
  std::vector<ObjectId> out;
  out.reserve(components_.size());
  for (const auto& [id, meta] : components_) out.push_back(id);
  return out;
}

const DfmEntry* DfmState::FindEntry(const std::string& function,
                                    const ObjectId& component) const {
  auto it = entries_.find({function, component});
  return it == entries_.end() ? nullptr : &it->second;
}

const DfmEntry* DfmState::EnabledImpl(const std::string& function) const {
  // Rows for one function are contiguous in the (function, component) map.
  for (auto it = entries_.lower_bound({function, ObjectId()});
       it != entries_.end() && it->first.first == function; ++it) {
    if (it->second.enabled) return &it->second;
  }
  return nullptr;
}

bool DfmState::AnyImplPresent(const std::string& function) const {
  auto it = entries_.lower_bound({function, ObjectId()});
  return it != entries_.end() && it->first.first == function;
}

std::vector<FunctionSignature> DfmState::ExportedInterface() const {
  std::vector<FunctionSignature> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.enabled && entry.visibility == Visibility::kExported) {
      out.push_back(entry.function);
    }
  }
  return out;
}

std::vector<const DfmEntry*> DfmState::AllEntries() const {
  std::vector<const DfmEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(&entry);
  return out;
}

EnabledSnapshot DfmState::Snapshot() const {
  EnabledSnapshot snapshot;
  for (const auto& [key, entry] : entries_) {
    if (entry.enabled) snapshot.Enable(entry.function.name, entry.component);
  }
  return snapshot;
}

Status DfmState::AdoptConfiguration(const DfmState& target,
                                    bool enforce_marks) {
  // Every target entry must already exist here with the same symbol.
  for (const DfmEntry* entry : target.AllEntries()) {
    const DfmEntry* mine = FindEntry(entry->function.name, entry->component);
    if (mine == nullptr) {
      return ComponentMissingError(
          "AdoptConfiguration: entry '" + entry->function.name +
          "' of component " + entry->component.ToString() +
          " not incorporated; incorporate new components first");
    }
    if (mine->symbol != entry->symbol) {
      return FailedPreconditionError(
          "AdoptConfiguration: symbol mismatch for '" + entry->function.name +
          "'");
    }
  }
  if (enforce_marks) {
    // A currently-permanent implementation must stay enabled in the target.
    for (const auto& [key, entry] : entries_) {
      if (!entry.permanent) continue;
      const DfmEntry* after =
          target.FindEntry(entry.function.name, entry.component);
      if (after == nullptr || !after->enabled) {
        return PermanentViolationError(
            "evolution would disable or drop permanent '" +
            entry.function.name + "' in component " +
            entry.component.ToString());
      }
    }
    // A currently-mandatory function must keep an enabled implementation.
    for (const std::string& function : mandatory_) {
      if (target.EnabledImpl(function) == nullptr) {
        return MandatoryViolationError(
            "evolution would leave mandatory '" + function +
            "' with no enabled implementation");
      }
    }
  }
  // Build the final enabled snapshot and validate the target's dependencies
  // against it before mutating anything.
  EnabledSnapshot final_snapshot = target.Snapshot();
  DCDO_RETURN_IF_ERROR(target.dependencies().Validate(final_snapshot));

  // Commit: enabled flags + visibility from the target; absent => disabled.
  for (auto& [key, entry] : entries_) {
    const DfmEntry* after = target.FindEntry(entry.function.name,
                                             entry.component);
    if (after == nullptr) {
      entry.enabled = false;
      entry.permanent = false;  // row is leaving with its component
      continue;
    }
    entry.enabled = after->enabled;
    entry.visibility = after->visibility;
    entry.permanent = after->permanent || (enforce_marks && entry.permanent);
  }
  std::set<std::string> mandatory = target.mandatory_functions();
  if (enforce_marks) {
    mandatory.insert(mandatory_.begin(), mandatory_.end());
  }
  mandatory_ = std::move(mandatory);
  deps_ = target.dependencies();
  return Status::Ok();
}

Status DfmState::ValidateMutation(const EnabledSnapshot& proposed) const {
  return deps_.Validate(proposed);
}

Status DfmState::ValidateComplete() const {
  for (const std::string& function : mandatory_) {
    if (EnabledImpl(function) == nullptr) {
      return MandatoryViolationError("mandatory '" + function +
                                     "' has no enabled implementation");
    }
  }
  for (const auto& [key, entry] : entries_) {
    if (entry.permanent && !entry.enabled) {
      return PermanentViolationError("permanent '" + entry.function.name +
                                     "' is not enabled");
    }
  }
  return deps_.Validate(Snapshot());
}

std::vector<std::string> DfmState::CheckIntegrity() const {
  std::vector<std::string> anomalies;
  std::map<std::string, int> enabled_per_function;
  for (const auto& [key, entry] : entries_) {
    if (entry.enabled) ++enabled_per_function[entry.function.name];
    if (entry.permanent && !entry.enabled) {
      anomalies.push_back("permanent implementation of '" +
                          entry.function.name + "' in component " +
                          entry.component.ToString() + " is disabled");
    }
    if (!components_.contains(entry.component)) {
      anomalies.push_back("entry for '" + entry.function.name +
                          "' references component " +
                          entry.component.ToString() +
                          " which is not incorporated");
    }
  }
  for (const auto& [function, count] : enabled_per_function) {
    if (count > 1) {
      anomalies.push_back("function '" + function + "' has " +
                          std::to_string(count) +
                          " enabled implementations (at most one allowed)");
    }
  }
  for (const std::string& function : mandatory_) {
    if (!AnyImplPresent(function)) {
      anomalies.push_back("mandatory function '" + function +
                          "' has no implementation present");
    }
  }
  return anomalies;
}

}  // namespace dcdo
