#include "dfm/compatibility.h"

#include <map>

namespace dcdo {

std::string_view CompatibilityName(Compatibility compatibility) {
  switch (compatibility) {
    case Compatibility::kIdentical: return "identical";
    case Compatibility::kBehavioral: return "behavioral";
    case Compatibility::kExtension: return "extension";
    case Compatibility::kBreaking: return "breaking";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, Compatibility compatibility) {
  return os << CompatibilityName(compatibility);
}

std::string CompatibilityReport::Summary() const {
  std::string out(CompatibilityName(level));
  if (!removed.empty()) {
    out += "; removed:";
    for (const FunctionSignature& fn : removed) out += " " + fn.name;
  }
  if (!signature_changed.empty()) {
    out += "; re-signed:";
    for (const FunctionSignature& fn : signature_changed) out += " " + fn.name;
  }
  if (!added.empty()) {
    out += "; added:";
    for (const FunctionSignature& fn : added) out += " " + fn.name;
  }
  if (!reimplemented.empty()) {
    out += "; reimplemented:";
    for (const std::string& fn : reimplemented) out += " " + fn;
  }
  return out;
}

CompatibilityReport ClassifyTransition(const DfmState& from,
                                       const DfmState& to) {
  CompatibilityReport report;
  std::map<std::string, FunctionSignature> before;
  std::map<std::string, FunctionSignature> after;
  for (const FunctionSignature& fn : from.ExportedInterface()) {
    before[fn.name] = fn;
  }
  for (const FunctionSignature& fn : to.ExportedInterface()) {
    after[fn.name] = fn;
  }

  for (const auto& [name, signature] : before) {
    auto it = after.find(name);
    if (it == after.end()) {
      report.removed.push_back(signature);
      continue;
    }
    if (it->second.signature != signature.signature) {
      report.signature_changed.push_back(signature);
      continue;
    }
    // Same exported signature: did the implementation move?
    const DfmEntry* old_impl = from.EnabledImpl(name);
    const DfmEntry* new_impl = to.EnabledImpl(name);
    if (old_impl != nullptr && new_impl != nullptr &&
        (old_impl->component != new_impl->component ||
         old_impl->symbol != new_impl->symbol)) {
      report.reimplemented.push_back(name);
    }
  }
  for (const auto& [name, signature] : after) {
    if (!before.contains(name)) report.added.push_back(signature);
  }

  if (!report.removed.empty() || !report.signature_changed.empty()) {
    report.level = Compatibility::kBreaking;
  } else if (!report.added.empty()) {
    report.level = Compatibility::kExtension;
  } else if (!report.reimplemented.empty()) {
    report.level = Compatibility::kBehavioral;
  } else {
    report.level = Compatibility::kIdentical;
  }
  return report;
}

}  // namespace dcdo
