#include "dfm/dependency.h"

#include <algorithm>

namespace dcdo {

std::string_view DependencyKindName(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kTypeA: return "A";
    case DependencyKind::kTypeB: return "B";
    case DependencyKind::kTypeC: return "C";
    case DependencyKind::kTypeD: return "D";
  }
  return "?";
}

Dependency Dependency::TypeA(std::string f1, ObjectId c1, std::string f2) {
  Dependency dep;
  dep.kind = DependencyKind::kTypeA;
  dep.dependent = std::move(f1);
  dep.dependent_component = c1;
  dep.target = std::move(f2);
  return dep;
}

Dependency Dependency::TypeB(std::string f1, ObjectId c1, std::string f2,
                             ObjectId c2) {
  Dependency dep;
  dep.kind = DependencyKind::kTypeB;
  dep.dependent = std::move(f1);
  dep.dependent_component = c1;
  dep.target = std::move(f2);
  dep.target_component = c2;
  return dep;
}

Dependency Dependency::TypeC(std::string f1, std::string f2, ObjectId c2) {
  Dependency dep;
  dep.kind = DependencyKind::kTypeC;
  dep.dependent = std::move(f1);
  dep.target = std::move(f2);
  dep.target_component = c2;
  return dep;
}

Dependency Dependency::TypeD(std::string f1, std::string f2) {
  Dependency dep;
  dep.kind = DependencyKind::kTypeD;
  dep.dependent = std::move(f1);
  dep.target = std::move(f2);
  return dep;
}

Status Dependency::Validate() const {
  if (dependent.empty() || target.empty()) {
    return InvalidArgumentError("dependency with empty function name");
  }
  const bool needs_c1 = kind == DependencyKind::kTypeA ||
                        kind == DependencyKind::kTypeB;
  const bool needs_c2 = kind == DependencyKind::kTypeB ||
                        kind == DependencyKind::kTypeC;
  if (needs_c1 != dependent_component.has_value()) {
    return InvalidArgumentError("Type " +
                                std::string(DependencyKindName(kind)) +
                                " dependency has wrong dependent-component");
  }
  if (needs_c2 != target_component.has_value()) {
    return InvalidArgumentError("Type " +
                                std::string(DependencyKindName(kind)) +
                                " dependency has wrong target-component");
  }
  return Status::Ok();
}

std::string Dependency::ToString() const {
  std::string out = "[";
  out += dependent;
  if (dependent_component) out += "," + dependent_component->ToString();
  out += "]->[";
  out += target;
  if (target_component) out += "," + target_component->ToString();
  out += "] (Type ";
  out += DependencyKindName(kind);
  out += ")";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Dependency& dep) {
  return os << dep.ToString();
}

bool EnabledSnapshot::AnyEnabled(const std::string& function) const {
  auto it = enabled_.lower_bound({function, ObjectId()});
  return it != enabled_.end() && it->first == function;
}

Status DependencySet::Add(Dependency dep) {
  DCDO_RETURN_IF_ERROR(dep.Validate());
  if (std::find(deps_.begin(), deps_.end(), dep) != deps_.end()) {
    return Status::Ok();  // idempotent
  }
  deps_.push_back(std::move(dep));
  return Status::Ok();
}

Status DependencySet::Remove(const Dependency& dep) {
  auto it = std::find(deps_.begin(), deps_.end(), dep);
  if (it == deps_.end()) {
    return NotFoundError("dependency " + dep.ToString() + " not present");
  }
  deps_.erase(it);
  return Status::Ok();
}

bool DependencySet::HeadHolds(const Dependency& dep,
                              const EnabledSnapshot& snapshot) {
  if (dep.dependent_component.has_value()) {
    return snapshot.IsEnabled(dep.dependent, *dep.dependent_component);
  }
  return snapshot.AnyEnabled(dep.dependent);
}

bool DependencySet::TargetHolds(const Dependency& dep,
                                const EnabledSnapshot& snapshot) {
  if (dep.target_component.has_value()) {
    return snapshot.IsEnabled(dep.target, *dep.target_component);
  }
  return snapshot.AnyEnabled(dep.target);
}

Status DependencySet::Validate(const EnabledSnapshot& snapshot) const {
  for (const Dependency& dep : deps_) {
    if (HeadHolds(dep, snapshot) && !TargetHolds(dep, snapshot)) {
      return DependencyViolationError("dependency " + dep.ToString() +
                                      " violated");
    }
  }
  return Status::Ok();
}

std::vector<const Dependency*> DependencySet::BindingDependenciesOn(
    const std::string& function, const ObjectId& component,
    const EnabledSnapshot& snapshot) const {
  std::vector<const Dependency*> out;
  for (const Dependency& dep : deps_) {
    if (dep.target != function) continue;
    if (dep.target_component.has_value() &&
        *dep.target_component != component) {
      continue;
    }
    if (HeadHolds(dep, snapshot)) out.push_back(&dep);
  }
  return out;
}

}  // namespace dcdo
