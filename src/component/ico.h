// Implementation Component Objects (paper Section 2.3).
//
// "An implementation component object (ICO) is an active distributed object
// that maintains an implementation component's data — the executable code
// that comprises the component, the descriptor that describes the contents
// of the executable code, and the component's implementation type."
//
// ICOs exist so that components live in the system's global namespace (they
// are named by ObjectId and resolvable through binding agents like any other
// object) and so that the image bytes stay put until someone actually needs
// them. A DCDO incorporating a component first reads the small metadata via
// RPC, then — only if the image is not already in its host's component
// cache — streams the image via bulk transfer.
#pragma once

#include <functional>

#include "component/component.h"
#include "naming/binding_agent.h"
#include "rpc/transport.h"
#include "sim/host.h"
#include "trace/metrics.h"

namespace dcdo {

class ImplementationComponentObject {
 public:
  // Exported method names in the ICO's interface.
  static constexpr const char* kGetDescriptor = "getDescriptor";
  static constexpr const char* kGetSize = "getSize";

  // Activates the ICO on `host`: registers an RPC endpoint and binds its
  // component's id in the binding agent. The component id *is* the ICO's
  // global name (the ICO is the component, as an active object).
  ImplementationComponentObject(sim::SimHost* host,
                                rpc::RpcTransport* transport,
                                BindingAgent* agent,
                                ImplementationComponent component);
  ~ImplementationComponentObject();

  ImplementationComponentObject(const ImplementationComponentObject&) = delete;
  ImplementationComponentObject& operator=(
      const ImplementationComponentObject&) = delete;

  const ObjectId& id() const { return component_.id; }
  const ImplementationComponent& component() const { return component_; }
  sim::NodeId node() const { return host_.node(); }

  // Streams the component image to `dest`'s component cache; `done` runs when
  // the image is cached there (or immediately if already cached). The caller
  // observes the download time the paper describes for non-cached components.
  // This is the sequential (fetch_concurrency = 1) path: a fixed
  // caller-computed duration through TimedTransfer, byte-identical to the
  // paper calibration, and an unreachable destination silently drops the
  // continuation (the requester's timeout reports it, as on a real LAN).
  void FetchTo(sim::SimHost* dest, std::function<void(Status)> done);

  // Pipeline variant: same cost model, but routed through
  // SimNetwork::StreamTransfer so concurrent fetches fair-share the wire,
  // and failures (unreachable, dropped in flight) come back as a Status
  // naming this component instead of a hang. Used by ComponentFetcher when
  // fetch_concurrency > 1.
  void StreamTo(sim::SimHost* dest, std::function<void(Status)> done);

  std::uint64_t fetches_served() const { return fetches_served_.value(); }

 private:
  // Accounting shared by FetchTo/StreamTo once the cache miss is committed.
  void BeginServing(const sim::SimHost& dest);

  sim::SimHost& host_;
  rpc::RpcTransport& transport_;
  BindingAgent& agent_;
  ImplementationComponent component_;
  sim::ProcessId pid_ = 0;
  trace::Counter fetches_served_;
};

}  // namespace dcdo
