#include "component/ico.h"

#include "common/logging.h"
#include "common/serialize.h"
#include "trace/trace_context.h"

namespace dcdo {

ImplementationComponentObject::ImplementationComponentObject(
    sim::SimHost* host, rpc::RpcTransport* transport, BindingAgent* agent,
    ImplementationComponent component)
    : host_(*host), transport_(*transport), agent_(*agent),
      component_(std::move(component)) {
  pid_ = host_.AdoptProcess(component_.id);
  // The ICO stores its image in the host file store and caches it locally —
  // fetching a component to its own home host is free.
  host_.StoreFile("ico/" + component_.id.ToString(), component_.code_bytes);
  host_.CacheComponent(component_.id, component_.code_bytes);
  agent_.Bind(component_.id,
              ObjectAddress{host_.node(), pid_, /*epoch=*/1});

  transport_.RegisterEndpoint(
      host_.node(), pid_, /*epoch=*/1,
      [this](const rpc::MethodInvocation& invocation, rpc::ReplyFn reply) {
        const std::string_view method = invocation.method_name();
        if (method == kGetDescriptor) {
          reply(rpc::MethodResult::Ok(SerializeComponentMeta(component_)));
          return;
        }
        if (method == kGetSize) {
          Writer writer;
          writer.WriteU64(component_.code_bytes);
          reply(rpc::MethodResult::Ok(std::move(writer).Take()));
          return;
        }
        reply(rpc::MethodResult::Error(NotFoundError(
            "ICO " + component_.name + " has no method '" +
            std::string(method) + "'")));
      });
}

ImplementationComponentObject::~ImplementationComponentObject() {
  transport_.UnregisterEndpoint(host_.node(), pid_);
  agent_.Unbind(component_.id);
  (void)host_.KillProcess(pid_);
}

void ImplementationComponentObject::BeginServing(const sim::SimHost& dest) {
  fetches_served_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("ico.fetches_served").Increment());
  DCDO_LOG(kDebug) << "ico " << component_.name << ": streaming "
                   << component_.code_bytes << "B to node " << dest.node();
}

void ImplementationComponentObject::FetchTo(sim::SimHost* dest,
                                            std::function<void(Status)> done) {
  if (dest->ComponentCached(component_.id)) {
    done(Status::Ok());
    return;
  }
  BeginServing(*dest);
  ObjectId component_id = component_.id;
  std::size_t bytes = component_.code_bytes;
  // Components stream object-to-object (session overhead + fast streaming),
  // not through the slow file-object path executables use.
  sim::SimDuration duration =
      (host_.node() == dest->node())
          ? host_.cost_model().DiskRead(bytes)
          : host_.cost_model().ComponentDownloadTime(bytes);
  host_.network().TimedTransfer(
      host_.node(), dest->node(), bytes, duration,
      [dest, component_id, bytes, done = std::move(done)]() {
        dest->CacheComponent(component_id, bytes);
        done(Status::Ok());
      });
}

void ImplementationComponentObject::StreamTo(sim::SimHost* dest,
                                             std::function<void(Status)> done) {
  if (dest->ComponentCached(component_.id)) {
    done(Status::Ok());
    return;
  }
  BeginServing(*dest);
  ObjectId component_id = component_.id;
  std::string name = component_.name;
  std::size_t bytes = component_.code_bytes;
  const sim::CostModel& cost = host_.cost_model();
  // Same cost decomposition as ComponentDownloadTime, re-expressed for the
  // fair-shared link: the per-component session overhead is the fixed setup,
  // the image then streams at up to efficiency × wire speed. A solo stream
  // therefore lands at exactly the FetchTo duration.
  bool local = host_.node() == dest->node();
  sim::SimDuration setup =
      local ? cost.DiskRead(bytes) : cost.component_fetch_overhead;
  double peak =
      cost.wire_bandwidth_bytes_per_sec * cost.component_transfer_efficiency;
  sim::NodeId dest_node = dest->node();
  host_.network().StreamTransfer(
      host_.node(), dest_node, bytes, setup, peak,
      [dest, dest_node, component_id, name = std::move(name), bytes,
       done = std::move(done)](bool delivered) mutable {
        if (!delivered) {
          done(UnavailableError("component '" + name + "' (" +
                                component_id.ToString() +
                                ") fetch to node " +
                                std::to_string(dest_node) + " failed"));
          return;
        }
        dest->CacheComponent(component_id, bytes);
        done(Status::Ok());
      });
}

}  // namespace dcdo
