#include "component/ico.h"

#include "common/logging.h"
#include "common/serialize.h"

namespace dcdo {

ImplementationComponentObject::ImplementationComponentObject(
    sim::SimHost* host, rpc::RpcTransport* transport, BindingAgent* agent,
    ImplementationComponent component)
    : host_(*host), transport_(*transport), agent_(*agent),
      component_(std::move(component)) {
  pid_ = host_.AdoptProcess(component_.id);
  // The ICO stores its image in the host file store and caches it locally —
  // fetching a component to its own home host is free.
  host_.StoreFile("ico/" + component_.id.ToString(), component_.code_bytes);
  host_.CacheComponent(component_.id, component_.code_bytes);
  agent_.Bind(component_.id,
              ObjectAddress{host_.node(), pid_, /*epoch=*/1});

  transport_.RegisterEndpoint(
      host_.node(), pid_, /*epoch=*/1,
      [this](const rpc::MethodInvocation& invocation, rpc::ReplyFn reply) {
        const std::string_view method = invocation.method_name();
        if (method == kGetDescriptor) {
          reply(rpc::MethodResult::Ok(SerializeComponentMeta(component_)));
          return;
        }
        if (method == kGetSize) {
          Writer writer;
          writer.WriteU64(component_.code_bytes);
          reply(rpc::MethodResult::Ok(std::move(writer).Take()));
          return;
        }
        reply(rpc::MethodResult::Error(NotFoundError(
            "ICO " + component_.name + " has no method '" +
            std::string(method) + "'")));
      });
}

ImplementationComponentObject::~ImplementationComponentObject() {
  transport_.UnregisterEndpoint(host_.node(), pid_);
  agent_.Unbind(component_.id);
  (void)host_.KillProcess(pid_);
}

void ImplementationComponentObject::FetchTo(sim::SimHost* dest,
                                            std::function<void(Status)> done) {
  if (dest->ComponentCached(component_.id)) {
    done(Status::Ok());
    return;
  }
  ++fetches_served_;
  ObjectId component_id = component_.id;
  std::size_t bytes = component_.code_bytes;
  DCDO_LOG(kDebug) << "ico " << component_.name << ": streaming "
                   << bytes << "B to node " << dest->node();
  // Components stream object-to-object (session overhead + fast streaming),
  // not through the slow file-object path executables use.
  sim::SimDuration duration =
      (host_.node() == dest->node())
          ? host_.cost_model().DiskRead(bytes)
          : host_.cost_model().ComponentDownloadTime(bytes);
  host_.network().TimedTransfer(
      host_.node(), dest->node(), bytes, duration,
      [dest, component_id, bytes, done = std::move(done)]() {
        dest->CacheComponent(component_id, bytes);
        done(Status::Ok());
      });
}

}  // namespace dcdo
