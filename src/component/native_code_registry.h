// NativeCodeRegistry: the reproduction's substitute for OS dynamic linking.
//
// In the Legion implementation a DCDO incorporates a component by "using the
// appropriate operating-system-specific mechanism for mapping it into the
// DCDO's address space" (dlopen + dlsym). Driving real dlopen from a test
// harness is awkward and unportable, so we substitute manual reflection: all
// function bodies compiled into this process register here by symbol, and
// "mapping a component" means resolving its symbols against this registry.
// The *cost* of a real map is charged separately in simulated time
// (CostModel::component_map_cached); this class is purely the lookup.
//
// The registry is also the enforcement point for implementation types: a
// symbol is registered under a given ImplementationType, and resolution asks
// for compatibility with the executing host's architecture — which is how a
// heterogeneous testbed refuses to map SPARC code into an x86 process.
#pragma once

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "component/dynamic_function.h"
#include "component/implementation_type.h"

namespace dcdo {

class NativeCodeRegistry {
 public:
  // Registers `body` under `symbol` with the given implementation type.
  // Re-registering the same symbol with the same type replaces the body
  // (a rebuilt component); same symbol with a *different* type coexists
  // (native builds for several architectures).
  void Register(const std::string& symbol, const ImplementationType& type,
                DynamicFn body);

  // Resolves `symbol` for a host of architecture `arch`. Prefers a native
  // build for `arch`; falls back to a portable build if one exists.
  [[nodiscard]] Result<DynamicFn> Resolve(const std::string& symbol,
                            sim::Architecture arch) const;

  bool Has(const std::string& symbol) const {
    return bodies_.contains(symbol);
  }
  std::size_t size() const { return bodies_.size(); }

 private:
  struct Entry {
    ImplementationType type;
    DynamicFn body;
  };
  // symbol -> builds (usually 1-2 entries; linear scan is fine).
  std::unordered_map<std::string, std::vector<Entry>> bodies_;
};

}  // namespace dcdo
