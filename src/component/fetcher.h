// ComponentFetcher: the component acquisition pipeline.
//
// Every path that pulls implementation component images onto a host — DCDO
// creation, incorporate, evolution, migration warm-up, coordinator prefetch —
// funnels through one of these. The fetcher owns the acquisition policy that
// used to be duplicated as hand-rolled continuation chains in Dcdo::EvolveTo
// and DcdoManager::MigrateInstance:
//
//   * bounded concurrency — at most CostModel::fetch_concurrency ICO streams
//     in flight per destination host; further requests queue FIFO;
//   * single-flight dedup — concurrent requests for the same
//     (host, component) join the one open stream instead of downloading the
//     image twice (two DCDOs activating on one host share each transfer);
//   * completion-order delivery — the caller's on_ready runs as each image
//     lands, not in request-list order; the terminal done runs once every
//     component in the batch has been dealt with.
//
// fetch_concurrency == 1 (the calibrated default) takes a separate sequential
// path that reproduces the legacy chains' cost accounting byte for byte:
// components processed back-to-front, one blocking FetchTo at a time, no
// sharing, no dedup. The pipeline (and SimNetwork's fair-shared streaming)
// only engages when a deployment opts in with a higher bound.
#pragma once

#include <functional>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "component/component.h"
#include "component/ico.h"
#include "sim/host.h"
#include "trace/metrics.h"

namespace dcdo {

// Resolution of a component id to its live ICO. The fetcher cannot see
// core/ico_directory (that would invert the layering), so the directory
// implements this one-method view of itself.
class IcoResolver {
 public:
  virtual ~IcoResolver() = default;
  virtual Result<ImplementationComponentObject*> FindIco(
      const ObjectId& id) const = 0;
};

class ComponentFetcher {
 public:
  // Runs once per component as its image becomes available on the host
  // (`was_cached` distinguishes a cache hit from a completed fetch — the
  // migration path charges map time only for hits, evolution incorporates
  // either way). Returning an error aborts the whole acquisition with it.
  using ReadyCallback =
      std::function<Status(const ImplementationComponent& meta,
                           bool was_cached)>;
  using DoneCallback = std::function<void(Status)>;

  struct Options {
    // true: the first stream failure aborts the batch — queued components are
    // dropped, already-open streams land harmlessly in the cache, and `done`
    // reports the failure (which names the exact component). false: stream
    // failures are logged and skipped (migration warm-up is best-effort; the
    // instance re-fetches lazily). Resolve and on_ready failures always
    // abort.
    bool fail_fast = true;
    // Legacy migration never resolves an ICO for an already-cached image;
    // evolution/incorporate resolve first so a dangling component id fails
    // even when cached. Both orders cost the same — this only preserves each
    // caller's error behaviour.
    bool skip_resolve_when_cached = false;
  };

  explicit ComponentFetcher(const IcoResolver* resolver);

  ComponentFetcher(const ComponentFetcher&) = delete;
  ComponentFetcher& operator=(const ComponentFetcher&) = delete;

  // Acquires every component in `components` onto `dest`, calling `on_ready`
  // per component and `done(overall)` once all are settled. With an empty
  // list, `done` runs synchronously (as the legacy chains did).
  void AcquireAll(sim::SimHost* dest,
                  std::vector<ImplementationComponent> components,
                  ReadyCallback on_ready, DoneCallback done,
                  Options options);
  void AcquireAll(sim::SimHost* dest,
                  std::vector<ImplementationComponent> components,
                  ReadyCallback on_ready, DoneCallback done) {
    AcquireAll(dest, std::move(components), std::move(on_ready),
               std::move(done), Options{});
  }

  // Warms `dest`'s cache with `components` ahead of need: best-effort, no
  // completion signal, and a later AcquireAll for the same components joins
  // the in-flight streams via single-flight. No-op at fetch_concurrency 1 —
  // the sequential calibration must not see extra transfers.
  void Prefetch(sim::SimHost* dest,
                std::vector<ImplementationComponent> components);

  // Streams opened / requests that joined an existing stream instead.
  std::uint64_t fetches_issued() const;
  std::uint64_t fetches_coalesced() const;

 private:
  struct Shared;  // pipeline state; weak-captured by stream callbacks
  std::shared_ptr<Shared> shared_;
};

}  // namespace dcdo
