#include "component/fetcher.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "trace/trace_context.h"

namespace dcdo {

// ===== Sequential path (fetch_concurrency == 1) =====
//
// Byte-identical to the continuation chains this fetcher replaced: one
// component at a time, back to front, through the fixed-duration FetchTo.
// The driver is its own shared_ptr owner — each pending FetchTo callback
// holds the strong reference across the async hop, so the chain frees itself
// when it ends, with no self-referential closure to leak.
namespace {
struct SequentialDriver : std::enable_shared_from_this<SequentialDriver> {
  const IcoResolver* resolver;
  sim::SimHost* dest;
  std::vector<ImplementationComponent> queue;  // processed back to front
  ComponentFetcher::ReadyCallback on_ready;
  ComponentFetcher::DoneCallback done;
  ComponentFetcher::Options options;

  void Step() {
    while (true) {
      if (queue.empty()) {
        done(Status::Ok());
        return;
      }
      ImplementationComponent meta = std::move(queue.back());
      queue.pop_back();
      if (options.skip_resolve_when_cached && dest->ComponentCached(meta.id)) {
        Status ready = on_ready(meta, /*was_cached=*/true);
        if (!ready.ok()) {
          done(ready);
          return;
        }
        continue;
      }
      Result<ImplementationComponentObject*> ico = resolver->FindIco(meta.id);
      if (!ico.ok()) {
        done(ico.status());
        return;
      }
      if (dest->ComponentCached(meta.id)) {
        Status ready = on_ready(meta, /*was_cached=*/true);
        if (!ready.ok()) {
          done(ready);
          return;
        }
        continue;
      }
      (*ico)->FetchTo(dest, [self = shared_from_this(),
                             meta = std::move(meta)](Status status) {
        if (!status.ok()) {
          if (self->options.fail_fast) {
            self->done(status);
            return;
          }
          DCDO_LOG(kWarning) << "component fetch failed: "
                             << status.ToString();
          self->Step();
          return;
        }
        Status ready = self->on_ready(meta, /*was_cached=*/false);
        if (!ready.ok()) {
          self->done(ready);
          return;
        }
        self->Step();
      });
      return;
    }
  }
};
}  // namespace

// ===== Pipeline path (fetch_concurrency > 1) =====

struct ComponentFetcher::Shared {
  // One AcquireAll batch. `outstanding` counts components not yet settled;
  // the terminal `done` fires when it reaches zero, reporting the first
  // recorded failure.
  struct Request {
    ReadyCallback on_ready;
    DoneCallback done;
    Options options;
    std::size_t outstanding = 0;
    Status failure = Status::Ok();
    bool aborted = false;
  };

  struct Item {
    std::shared_ptr<Request> request;
    ImplementationComponent meta;
  };

  struct HostState {
    int in_flight = 0;        // open streams (single-flight leaders only)
    std::deque<Item> queue;   // FIFO across requests, waiting for a slot
    // Open streams by component: followers pile onto the leader's entry and
    // all settle together when the one transfer lands.
    std::unordered_map<ObjectId, std::vector<Item>, ObjectIdHash> flights;
  };

  const IcoResolver* resolver;
  std::unordered_map<sim::SimHost*, HostState> hosts;
  trace::Counter issued;
  trace::Counter coalesced;

  void Enqueue(sim::SimHost* dest, Item item) {
    hosts[dest].queue.push_back(std::move(item));
  }

  void Pump(const std::shared_ptr<Shared>& self, sim::SimHost* dest) {
    HostState& host = hosts[dest];
    int limit = dest->cost_model().fetch_concurrency;
    while (!host.queue.empty() && host.in_flight < limit) {
      Item item = std::move(host.queue.front());
      host.queue.pop_front();
      Dispatch(self, dest, host, std::move(item));
    }
  }

  // Settles one component for one request (cache hit, fetch outcome, or
  // abort) and fires the request's `done` when it was the last.
  void Settle(Item& item, Status status, bool was_cached) {
    Request& request = *item.request;
    if (status.ok() && !request.aborted) {
      status = request.on_ready(item.meta, was_cached);
      if (!status.ok()) {
        // on_ready failures are caller-side (dependency check, destroyed
        // instance) and always abort, even in best-effort mode.
        request.aborted = true;
        if (request.failure.ok()) request.failure = status;
      }
    } else if (!status.ok()) {
      if (request.options.fail_fast) {
        request.aborted = true;
        if (request.failure.ok()) request.failure = status;
      } else if (!request.aborted) {
        DCDO_LOG(kWarning) << "component fetch failed: " << status.ToString();
      }
    }
    if (--request.outstanding == 0) {
      request.done(request.failure);
    }
  }

  void Dispatch(const std::shared_ptr<Shared>& self, sim::SimHost* dest,
                HostState& host, Item item) {
    if (item.request->aborted) {
      Settle(item, Status::Ok(), /*was_cached=*/false);
      return;
    }
    const ObjectId id = item.meta.id;
    if (item.request->options.skip_resolve_when_cached &&
        dest->ComponentCached(id)) {
      Settle(item, Status::Ok(), /*was_cached=*/true);
      return;
    }
    Result<ImplementationComponentObject*> ico = resolver->FindIco(id);
    if (!ico.ok()) {
      // A dangling component id aborts the request outright (there is
      // nothing to retry against), best-effort or not.
      item.request->aborted = true;
      if (item.request->failure.ok()) item.request->failure = ico.status();
      Settle(item, Status::Ok(), /*was_cached=*/false);
      return;
    }
    if (dest->ComponentCached(id)) {
      Settle(item, Status::Ok(), /*was_cached=*/true);
      return;
    }
    auto flight = host.flights.find(id);
    if (flight != host.flights.end()) {
      // Single-flight: someone is already streaming this image here — ride
      // along instead of opening a duplicate transfer.
      coalesced.Increment();
      DCDO_TRACE_HOOK(metrics().GetCounter("ico.fetch_coalesced").Increment());
      flight->second.push_back(std::move(item));
      return;
    }
    host.flights[id].push_back(std::move(item));
    ++host.in_flight;
    issued.Increment();
    (*ico)->StreamTo(dest, [weak = std::weak_ptr<Shared>(self), dest,
                            id](Status status) {
      std::shared_ptr<Shared> self = weak.lock();
      if (self == nullptr) return;  // fetcher destroyed; image is cached
      self->OnStreamDone(self, dest, id, std::move(status));
    });
  }

  void OnStreamDone(const std::shared_ptr<Shared>& self, sim::SimHost* dest,
                    const ObjectId& id, Status status) {
    HostState& host = hosts[dest];
    auto flight = host.flights.find(id);
    if (flight == host.flights.end()) return;
    std::vector<Item> waiters = std::move(flight->second);
    host.flights.erase(flight);
    --host.in_flight;
    for (Item& item : waiters) {
      Settle(item, status, /*was_cached=*/false);
    }
    Pump(self, dest);
  }
};

ComponentFetcher::ComponentFetcher(const IcoResolver* resolver)
    : shared_(std::make_shared<Shared>()) {
  shared_->resolver = resolver;
}

void ComponentFetcher::AcquireAll(
    sim::SimHost* dest, std::vector<ImplementationComponent> components,
    ReadyCallback on_ready, DoneCallback done, Options options) {
  if (dest->cost_model().fetch_concurrency <= 1) {
    auto driver = std::make_shared<SequentialDriver>();
    driver->resolver = shared_->resolver;
    driver->dest = dest;
    driver->queue = std::move(components);
    driver->on_ready = std::move(on_ready);
    driver->done = std::move(done);
    driver->options = options;
    driver->Step();
    return;
  }
  if (components.empty()) {
    done(Status::Ok());
    return;
  }
  auto request = std::make_shared<Shared::Request>();
  request->on_ready = std::move(on_ready);
  request->done = std::move(done);
  request->options = options;
  request->outstanding = components.size();
  for (ImplementationComponent& meta : components) {
    shared_->Enqueue(dest, Shared::Item{request, std::move(meta)});
  }
  shared_->Pump(shared_, dest);
}

void ComponentFetcher::Prefetch(
    sim::SimHost* dest, std::vector<ImplementationComponent> components) {
  if (dest->cost_model().fetch_concurrency <= 1) return;
  AcquireAll(
      dest, std::move(components),
      [](const ImplementationComponent&, bool) { return Status::Ok(); },
      [](Status) {}, Options{.fail_fast = false});
}

std::uint64_t ComponentFetcher::fetches_issued() const {
  return shared_->issued.value();
}

std::uint64_t ComponentFetcher::fetches_coalesced() const {
  return shared_->coalesced.value();
}

}  // namespace dcdo
