#include "component/implementation_type.h"

#include "common/strings.h"

namespace dcdo {

std::string_view CodeFormatName(CodeFormat format) {
  switch (format) {
    case CodeFormat::kElfSharedObject: return "elf-so";
    case CodeFormat::kCoffDll: return "coff-dll";
    case CodeFormat::kPortableBytecode: return "bytecode";
  }
  return "unknown";
}

std::string_view LanguageName(Language language) {
  switch (language) {
    case Language::kCpp: return "c++";
    case Language::kC: return "c";
    case Language::kFortran: return "fortran";
    case Language::kJava: return "java";
    case Language::kAny: return "any";
  }
  return "unknown";
}

std::string ImplementationType::ToString() const {
  std::string out(sim::ArchitectureName(architecture));
  out += "/";
  out += CodeFormatName(format);
  out += "/";
  out += LanguageName(language);
  return out;
}

std::ostream& operator<<(std::ostream& os, const ImplementationType& type) {
  return os << type.ToString();
}

}  // namespace dcdo
