// Dynamic functions (paper Section 2).
//
// A dynamic function is the unit of dynamic configurability: it can be
// exported or internal, enabled or disabled, and marked mandatory, permanent,
// or fully dynamic (Section 3.2). Its callable body is a C++ closure looked
// up by symbol in a NativeCodeRegistry — the reproduction's stand-in for OS
// dynamic linking.
//
// Function bodies receive a CallContext so they can call *other* dynamic
// functions in the same object. Crucially, such intra-object calls go back
// through the object's DFM — "a centralized table through which all calls to
// dynamic functions must go" — which is what makes the missing/disappearing
// internal function problems possible, and what lets thread-activity
// monitoring see every call.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "common/bytes.h"
#include "common/object_id.h"
#include "common/status.h"

namespace dcdo {

// Whether a function may be invoked from outside the object.
enum class Visibility : std::uint8_t {
  kExported,  // part of the object's public interface
  kInternal,  // callable only from within the object
};

// Evolution constraints (Section 3.2, "Mandatory and Permanent Functions").
enum class Constraint : std::uint8_t {
  kFullyDynamic,  // may be disabled, replaced, or removed freely
  kMandatory,     // some enabled implementation must always exist
  kPermanent,     // this exact implementation is frozen
};

std::string_view VisibilityName(Visibility visibility);
std::string_view ConstraintName(Constraint constraint);

// Name + signature identify a *function*; (function, component) identifies an
// *implementation* of that function. Signatures are opaque strings ("i(ii)"
// style); the DFM treats equal strings as compatible.
struct FunctionSignature {
  std::string name;
  std::string signature;

  std::string ToString() const { return name + ":" + signature; }
  friend bool operator==(const FunctionSignature&,
                         const FunctionSignature&) = default;
  friend auto operator<=>(const FunctionSignature&,
                          const FunctionSignature&) = default;
};

std::ostream& operator<<(std::ostream& os, const FunctionSignature& sig);

// The environment a dynamic function body executes in. Implemented by the
// DCDO; lets bodies make DFM-mediated intra-object calls and observe self.
class CallContext {
 public:
  virtual ~CallContext() = default;

  // Calls dynamic function `function` in the same object through the DFM.
  // Fails with kFunctionMissing / kFunctionDisabled when the callee has been
  // removed or disabled out from under the caller — the paper's "missing
  // internal function problem" surfaces here as a typed error.
  virtual Result<ByteBuffer> CallInternal(const std::string& function,
                                          const ByteBuffer& args) = 0;

  // Identity of the executing object.
  virtual ObjectId self_id() const = 0;

  // Simulates this call blocking on an outcall to another object for
  // `sim_seconds`: the executing "thread" stays active inside the function
  // while the rest of the system (including configuration calls!) proceeds.
  // This is the trigger for the disappearing internal function/component
  // problems in tests.
  virtual void BlockOnOutcall(double sim_seconds) = 0;

  // Mutable per-object application data, shared by every component of the
  // object. Because a DCDO evolves by re-mapping its DFM — the process and
  // its heap survive — this data persists across evolution *in core*,
  // whereas monolithic evolution must capture and restore it. The default
  // returns a throwaway buffer for contexts without state (test fakes).
  virtual ByteBuffer& object_data() {
    static thread_local ByteBuffer scratch;
    return scratch;
  }
};

// A dynamic function body: args in, payload or typed error out.
using DynamicFn =
    std::function<Result<ByteBuffer>(CallContext&, const ByteBuffer&)>;

// Compile-time descriptor of one function implementation inside a component:
// what it is (signature), how it may be called (visibility), what evolution
// constraint the component author demands, and the registry symbol of its
// body.
struct FunctionImplDescriptor {
  FunctionSignature function;
  Visibility visibility = Visibility::kExported;
  Constraint constraint = Constraint::kFullyDynamic;
  std::string symbol;  // NativeCodeRegistry key for the body
  // Structural-dependency hints discovered by "static analysis" when the
  // component was built (paper: creating structural dependencies "could be
  // automated via static analysis of source code"). Names of functions this
  // implementation calls through the DFM.
  std::vector<std::string> calls;
};

}  // namespace dcdo
