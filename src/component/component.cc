#include "component/component.h"

#include <set>

namespace dcdo {

const FunctionImplDescriptor* ImplementationComponent::Find(
    const std::string& function_name) const {
  for (const FunctionImplDescriptor& fn : functions) {
    if (fn.function.name == function_name) return &fn;
  }
  return nullptr;
}

Status ImplementationComponent::Validate() const {
  if (name.empty()) return InvalidArgumentError("component has no name");
  std::set<std::string> seen;
  for (const FunctionImplDescriptor& fn : functions) {
    if (fn.function.name.empty()) {
      return InvalidArgumentError("component '" + name +
                                  "' has a function with an empty name");
    }
    if (fn.symbol.empty()) {
      return InvalidArgumentError("function '" + fn.function.name +
                                  "' in component '" + name +
                                  "' has no symbol");
    }
    if (!seen.insert(fn.function.name).second) {
      return InvalidArgumentError("component '" + name +
                                  "' implements function '" +
                                  fn.function.name + "' twice");
    }
  }
  if (!functions.empty() && code_bytes == 0) {
    return InvalidArgumentError("component '" + name +
                                "' declares functions but no code image");
  }
  return Status::Ok();
}

ComponentBuilder::ComponentBuilder(std::string name) {
  component_.name = std::move(name);
  component_.type = ImplementationType::Portable();
  component_.code_bytes = 16 * 1024;  // a small default image
}

ComponentBuilder& ComponentBuilder::SetType(const ImplementationType& type) {
  component_.type = type;
  return *this;
}

ComponentBuilder& ComponentBuilder::SetCodeBytes(std::size_t bytes) {
  component_.code_bytes = bytes;
  return *this;
}

ComponentBuilder& ComponentBuilder::AddFunction(
    std::string function_name, std::string signature, std::string symbol,
    Visibility visibility, Constraint constraint,
    std::vector<std::string> calls) {
  FunctionImplDescriptor fn;
  fn.function = FunctionSignature{std::move(function_name),
                                  std::move(signature)};
  fn.visibility = visibility;
  fn.constraint = constraint;
  fn.symbol = std::move(symbol);
  fn.calls = std::move(calls);
  component_.functions.push_back(std::move(fn));
  return *this;
}

Result<ImplementationComponent> ComponentBuilder::Build() {
  DCDO_RETURN_IF_ERROR(component_.Validate());
  component_.id = ObjectId::Next(domains::kComponent);
  return component_;
}

ByteBuffer SerializeComponentMeta(const ImplementationComponent& component) {
  Writer writer;
  writer.WriteObjectId(component.id);
  writer.WriteString(component.name);
  writer.WriteU32(static_cast<std::uint32_t>(component.type.architecture));
  writer.WriteU32(static_cast<std::uint32_t>(component.type.format));
  writer.WriteU32(static_cast<std::uint32_t>(component.type.language));
  writer.WriteU64(component.code_bytes);
  writer.WriteU64(component.functions.size());
  for (const FunctionImplDescriptor& fn : component.functions) {
    writer.WriteString(fn.function.name);
    writer.WriteString(fn.function.signature);
    writer.WriteU32(static_cast<std::uint32_t>(fn.visibility));
    writer.WriteU32(static_cast<std::uint32_t>(fn.constraint));
    writer.WriteString(fn.symbol);
    writer.WriteU64(fn.calls.size());
    for (const std::string& callee : fn.calls) writer.WriteString(callee);
  }
  return std::move(writer).Take();
}

Result<ImplementationComponent> ParseComponentMeta(const ByteBuffer& buffer) {
  Reader reader(buffer);
  ImplementationComponent component;
  DCDO_ASSIGN_OR_RETURN(component.id, reader.ReadObjectId());
  DCDO_ASSIGN_OR_RETURN(component.name, reader.ReadString());
  DCDO_ASSIGN_OR_RETURN(std::uint32_t arch, reader.ReadU32());
  DCDO_ASSIGN_OR_RETURN(std::uint32_t format, reader.ReadU32());
  DCDO_ASSIGN_OR_RETURN(std::uint32_t language, reader.ReadU32());
  component.type.architecture = static_cast<sim::Architecture>(arch);
  component.type.format = static_cast<CodeFormat>(format);
  component.type.language = static_cast<Language>(language);
  DCDO_ASSIGN_OR_RETURN(component.code_bytes, reader.ReadU64());
  DCDO_ASSIGN_OR_RETURN(std::uint64_t count, reader.ReadU64());
  for (std::uint64_t i = 0; i < count; ++i) {
    FunctionImplDescriptor fn;
    DCDO_ASSIGN_OR_RETURN(fn.function.name, reader.ReadString());
    DCDO_ASSIGN_OR_RETURN(fn.function.signature, reader.ReadString());
    DCDO_ASSIGN_OR_RETURN(std::uint32_t visibility, reader.ReadU32());
    DCDO_ASSIGN_OR_RETURN(std::uint32_t constraint, reader.ReadU32());
    fn.visibility = static_cast<Visibility>(visibility);
    fn.constraint = static_cast<Constraint>(constraint);
    DCDO_ASSIGN_OR_RETURN(fn.symbol, reader.ReadString());
    DCDO_ASSIGN_OR_RETURN(std::uint64_t calls, reader.ReadU64());
    for (std::uint64_t j = 0; j < calls; ++j) {
      DCDO_ASSIGN_OR_RETURN(std::string callee, reader.ReadString());
      fn.calls.push_back(std::move(callee));
    }
    component.functions.push_back(std::move(fn));
  }
  DCDO_RETURN_IF_ERROR(component.Validate());
  return component;
}

}  // namespace dcdo
