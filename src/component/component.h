// Implementation components (paper Section 2).
//
// "A DCDO consists of a set of implementation components, each of which
// contains the implementation of a set of dynamic functions." A component
// bundles: an identity (the global name of its ICO), an implementation type,
// the executable image (tracked by size; bodies resolve through the
// NativeCodeRegistry), and descriptors for every function implementation it
// defines — including the author's mandatory/permanent markings, which the
// DFM-descriptor machinery must honour on incorporate (Section 3.2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/object_id.h"
#include "common/serialize.h"
#include "common/status.h"
#include "component/dynamic_function.h"
#include "component/implementation_type.h"

namespace dcdo {

struct ImplementationComponent {
  ObjectId id;        // global name (ObjectId of the owning ICO)
  std::string name;   // human label, e.g. "libsort-v2"
  ImplementationType type;
  std::size_t code_bytes = 0;  // size of the executable image
  std::vector<FunctionImplDescriptor> functions;

  // Descriptor for `function_name`, or nullptr.
  const FunctionImplDescriptor* Find(const std::string& function_name) const;

  // Structural soundness: unique function names, non-empty symbols, positive
  // image size when functions exist.
  [[nodiscard]] Status Validate() const;

  std::size_t function_count() const { return functions.size(); }
};

// Fluent builder used by examples/tests to assemble components.
class ComponentBuilder {
 public:
  explicit ComponentBuilder(std::string name);

  ComponentBuilder& SetType(const ImplementationType& type);
  ComponentBuilder& SetCodeBytes(std::size_t bytes);

  // Adds a function implementation. `calls` lists DFM-mediated callees for
  // automatic structural (Type A) dependencies.
  ComponentBuilder& AddFunction(
      std::string function_name, std::string signature, std::string symbol,
      Visibility visibility = Visibility::kExported,
      Constraint constraint = Constraint::kFullyDynamic,
      std::vector<std::string> calls = {});

  // Validates and returns the component with a freshly drawn id.
  [[nodiscard]] Result<ImplementationComponent> Build();

 private:
  ImplementationComponent component_;
};

// Wire form of a component's metadata (everything except the image bytes);
// this is what a DCDO reads from an ICO before deciding to fetch the image.
ByteBuffer SerializeComponentMeta(const ImplementationComponent& component);
[[nodiscard]] Result<ImplementationComponent> ParseComponentMeta(const ByteBuffer& buffer);

}  // namespace dcdo
