// Implementation types (paper Section 2.1).
//
// "Every implementation component has an associated implementation type,
// which describes properties such as the component's architecture, its
// object code format, and (if important) the programming language with which
// it was built." Implementation types are what let functionally equivalent
// implementations coexist so objects can migrate across a heterogeneous
// testbed: a DCDO moving from a Linux/x86 host to a Solaris/SPARC host keeps
// its version but swaps to components whose implementation type matches the
// destination.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/host.h"

namespace dcdo {

enum class CodeFormat : std::uint8_t {
  kElfSharedObject,
  kCoffDll,
  kPortableBytecode,  // format usable on any architecture
};

enum class Language : std::uint8_t {
  kCpp,
  kC,
  kFortran,
  kJava,
  kAny,  // language is unimportant for compatibility
};

std::string_view CodeFormatName(CodeFormat format);
std::string_view LanguageName(Language language);

struct ImplementationType {
  sim::Architecture architecture = sim::Architecture::kX86Linux;
  CodeFormat format = CodeFormat::kElfSharedObject;
  Language language = Language::kCpp;

  // True if code of this type can be mapped into a process on `host_arch`.
  // Portable bytecode runs anywhere; native formats must match architecture.
  bool CompatibleWith(sim::Architecture host_arch) const {
    if (format == CodeFormat::kPortableBytecode) return true;
    return architecture == host_arch;
  }

  static ImplementationType Native(sim::Architecture arch) {
    return ImplementationType{arch, CodeFormat::kElfSharedObject,
                              Language::kCpp};
  }
  static ImplementationType Portable() {
    return ImplementationType{sim::Architecture::kX86Linux,
                              CodeFormat::kPortableBytecode, Language::kAny};
  }

  std::string ToString() const;

  friend bool operator==(const ImplementationType&,
                         const ImplementationType&) = default;
};

std::ostream& operator<<(std::ostream& os, const ImplementationType& type);

}  // namespace dcdo
