#include "component/native_code_registry.h"

namespace dcdo {

void NativeCodeRegistry::Register(const std::string& symbol,
                                  const ImplementationType& type,
                                  DynamicFn body) {
  auto& builds = bodies_[symbol];
  for (Entry& entry : builds) {
    if (entry.type == type) {
      entry.body = std::move(body);
      return;
    }
  }
  builds.push_back(Entry{type, std::move(body)});
}

Result<DynamicFn> NativeCodeRegistry::Resolve(const std::string& symbol,
                                              sim::Architecture arch) const {
  auto it = bodies_.find(symbol);
  if (it == bodies_.end()) {
    return NotFoundError("unresolved symbol '" + symbol + "'");
  }
  const DynamicFn* portable = nullptr;
  for (const Entry& entry : it->second) {
    if (entry.type.format == CodeFormat::kPortableBytecode) {
      portable = &entry.body;
      continue;
    }
    if (entry.type.CompatibleWith(arch)) return entry.body;
  }
  if (portable != nullptr) return *portable;
  return ArchMismatchError("symbol '" + symbol + "' has no build for " +
                           std::string(sim::ArchitectureName(arch)));
}

}  // namespace dcdo
