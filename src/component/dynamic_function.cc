#include "component/dynamic_function.h"

namespace dcdo {

std::string_view VisibilityName(Visibility visibility) {
  switch (visibility) {
    case Visibility::kExported: return "exported";
    case Visibility::kInternal: return "internal";
  }
  return "unknown";
}

std::string_view ConstraintName(Constraint constraint) {
  switch (constraint) {
    case Constraint::kFullyDynamic: return "fully-dynamic";
    case Constraint::kMandatory: return "mandatory";
    case Constraint::kPermanent: return "permanent";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, const FunctionSignature& sig) {
  return os << sig.ToString();
}

}  // namespace dcdo
