#include "runtime/testbed.h"

namespace dcdo {

Testbed::Testbed(const Options& options) {
  network_ = std::make_unique<sim::SimNetwork>(&simulation_,
                                               options.cost_model);
  transport_ = std::make_unique<rpc::RpcTransport>(network_.get());
  static constexpr sim::Architecture kRotation[] = {
      sim::Architecture::kX86Linux, sim::Architecture::kSparcSolaris,
      sim::Architecture::kAlphaOsf, sim::Architecture::kX86Nt};
  for (int i = 0; i < options.host_count; ++i) {
    sim::Architecture arch =
        options.heterogeneous ? kRotation[i % 4] : sim::Architecture::kX86Linux;
    hosts_.push_back(std::make_unique<sim::SimHost>(
        &simulation_, network_.get(), static_cast<sim::NodeId>(i + 1), arch));
  }
}

std::unique_ptr<rpc::RpcClient> Testbed::MakeClient(std::size_t host_index) {
  return std::make_unique<rpc::RpcClient>(transport_.get(), &agent_,
                                          hosts_.at(host_index)->node());
}

}  // namespace dcdo
