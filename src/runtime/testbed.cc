#include "runtime/testbed.h"

#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "trace/chrome_trace.h"

namespace dcdo {

namespace {
// Effective worker-locality count: the cost model's sim_workers, overridable
// by DCDO_SIM_WORKERS — but only when the resulting configuration is one the
// parallel executor supports (ValidateCostModel's parallel rules). An unsafe
// override is refused with a warning rather than silently corrupting a run.
int ResolveSimWorkers(sim::CostModel* cost) {
  int workers = cost->sim_workers;
  if (const char* env = std::getenv("DCDO_SIM_WORKERS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end == env || parsed < 1 || parsed > 16) {
      DCDO_LOG(kWarning) << "testbed: ignoring DCDO_SIM_WORKERS='" << env
                         << "' (expected an integer in [1, 16])";
    } else {
      workers = static_cast<int>(parsed);
    }
  }
  if (workers > 1) {
    sim::CostModel candidate = *cost;
    candidate.sim_workers = workers;
    Status valid = sim::ValidateCostModel(candidate);
    if (!valid.ok()) {
      DCDO_LOG(kWarning) << "testbed: cannot run " << workers
                         << " sim workers with this cost model ("
                         << valid.message() << "); staying single-threaded";
      workers = 1;
    }
  }
  cost->sim_workers = workers;
  return workers;
}
}  // namespace

Testbed::Testbed(const Options& options) : cost_model_(options.cost_model) {
  int sim_workers = ResolveSimWorkers(&cost_model_);
  if (sim_workers > 1 && options.tracing) {
    // Span capture mutates the trace buffer from whatever thread fires the
    // event; the tracing layer is not locality-aware. Traced runs stay on
    // the legacy engine.
    DCDO_LOG(kWarning) << "testbed: tracing is incompatible with parallel "
                          "simulation; staying single-threaded";
    sim_workers = 1;
    cost_model_.sim_workers = 1;
  }
  if (sim_workers > 1) {
    Status parallel = simulation_.ConfigureParallel(
        sim_workers, cost_model_.network_latency);
    if (!parallel.ok()) {
      DCDO_LOG(kError) << "testbed: parallel executor rejected: "
                       << parallel.message();
      std::abort();
    }
  }
#if defined(DCDO_CHECK_ENABLED)
  if (options.checking) {
    // Installed before anything else exists, so every binding cache and
    // DCDO constructed over this testbed registers its probe.
    checker_ = std::make_unique<check::CheckContext>(options.check_options);
    checker_->Install();
    checker_->AttachSimulation(&simulation_);
  }
#endif
#if defined(DCDO_TRACE_ENABLED)
  if (options.tracing) {
    // Before the network exists: the first spans come from the substrate.
    tracer_ = std::make_unique<trace::TraceContext>(options.trace_options);
    tracer_->AttachSimulation(&simulation_);
    tracer_->Install();
  }
#endif
  network_ = std::make_unique<sim::SimNetwork>(&simulation_, cost_model_);
  transport_ = std::make_unique<rpc::RpcTransport>(network_.get());
#if defined(DCDO_CHECK_ENABLED)
  if (checker_) {
    checker_->SetEndpointLiveness(
        [this](std::uint32_t node, std::uint64_t pid, std::uint64_t epoch) {
          return transport_->EndpointEpoch(static_cast<sim::NodeId>(node),
                                           static_cast<sim::ProcessId>(pid)) ==
                     epoch &&
                 epoch != 0;
        });
    checker_->SetNetworkProbe([this]() {
      check::NetworkCounters counters;
      counters.sent = network_->messages_sent();
      counters.delivered = network_->messages_delivered();
      counters.dropped_in_flight = network_->messages_dropped_in_flight();
      counters.in_flight = network_->messages_in_flight();
      return counters;
    });
  }
#endif
  static constexpr sim::Architecture kRotation[] = {
      sim::Architecture::kX86Linux, sim::Architecture::kSparcSolaris,
      sim::Architecture::kAlphaOsf, sim::Architecture::kX86Nt};
  for (int i = 0; i < options.host_count; ++i) {
    sim::Architecture arch =
        options.heterogeneous ? kRotation[i % 4] : sim::Architecture::kX86Linux;
    hosts_.push_back(std::make_unique<sim::SimHost>(
        &simulation_, network_.get(), static_cast<sim::NodeId>(i + 1), arch));
  }
  if (cost_model_.NamingDirectoryModeled()) {
    // The partitioned/leased directory: one dedicated host per shard, with
    // NodeIds stacked above the regular host range so workload hosts keep
    // their legacy ids. With the default cost model this block never runs
    // and the agent stays the unattached monolithic store.
    std::vector<sim::NodeId> shard_nodes;
    shard_nodes.reserve(
        static_cast<std::size_t>(cost_model_.naming_shard_count));
    for (int s = 0; s < cost_model_.naming_shard_count; ++s) {
      auto node = static_cast<sim::NodeId>(options.host_count + 1 + s);
      shard_hosts_.push_back(std::make_unique<sim::SimHost>(
          &simulation_, network_.get(), node, sim::Architecture::kX86Linux));
      shard_nodes.push_back(node);
    }
    Status configured =
        agent_.Configure(DirectoryConfig::FromCostModel(cost_model_),
                         &simulation_, network_.get(), std::move(shard_nodes));
    // The config came from a cost model the caller controls; surface a bad
    // one loudly instead of silently running the legacy directory.
    if (!configured.ok()) {
      DCDO_LOG(kError) << "testbed: directory configuration rejected: "
                       << configured.message();
      std::abort();
    }
  }
}

Testbed::~Testbed() {
  if (checker_) {
    // Final sweep: catches quiescence-only violations (messages still in
    // flight) and anything an every-N cadence stepped over.
    checker_->EvaluateAtEnd();
    checker_->Uninstall();
  }
  if (tracer_) tracer_->Uninstall();
}

Status Testbed::DumpTrace(const std::string& path) {
  if (!tracer_) {
    return FailedPreconditionError(
        "tracing is not installed on this testbed (Options::tracing, build "
        "option DCDO_TRACING)");
  }
  // Substrate totals that live as component members rather than registry
  // metrics: snapshot them into the registry at export time so the JSON
  // carries the complete picture. (Registry-native metrics — rpc.dedup_hits,
  // rpc.timeouts, net.drops, evolve.* — are already live-incremented; only
  // the member-counter mirrors are set here.)
  trace::MetricsRegistry& m = tracer_->metrics();
  m.SetCounter("net.messages_sent", network_->messages_sent());
  m.SetCounter("net.messages_delivered", network_->messages_delivered());
  m.SetCounter("net.messages_dropped", network_->messages_dropped());
  m.SetCounter("net.bytes_sent", network_->bytes_sent());
  m.SetCounter("rpc.invocations_delivered",
               transport_->invocations_delivered());
  std::uint64_t evictions = 0;
  for (const auto& host : hosts_) evictions += host->component_evictions();
  m.SetCounter("host.component_cache_evictions", evictions);
  return trace::WriteChromeTrace(*tracer_, path);
}

std::unique_ptr<rpc::RpcClient> Testbed::MakeClient(std::size_t host_index) {
  return std::make_unique<rpc::RpcClient>(transport_.get(), &agent_,
                                          hosts_.at(host_index)->node());
}

}  // namespace dcdo
