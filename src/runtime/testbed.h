// Testbed: one-call assembly of the simulated Centurion cluster.
//
// The paper's experiments ran on a 16-node subset of the Legion "Centurion"
// machine (dual 400 MHz Pentium IIs, 100 Mbps switched Ethernet). Testbed
// wires up the full substrate — simulation, cost model, network, hosts,
// binding agent, RPC transport, and the native-code registry — so tests,
// benches, and examples start from the same environment the paper did.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/check_context.h"
#include "common/status.h"
#include "component/native_code_registry.h"
#include "naming/binding_agent.h"
#include "naming/name_service.h"
#include "rpc/client.h"
#include "rpc/transport.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "trace/trace_context.h"

namespace dcdo {

class Testbed {
 public:
  struct Options {
    int host_count = 16;
    // All hosts x86/Linux by default (the Centurion subset was homogeneous);
    // set true to alternate architectures for heterogeneity experiments.
    bool heterogeneous = false;
    sim::CostModel cost_model = {};
    // Install an always-on CheckContext (invariants + race detection) over
    // this testbed. Default on — tests run checked; benches measuring the
    // raw runtime turn it off. No effect when the build has DCDO_CHECKING
    // off.
    bool checking = true;
    check::CheckContext::Options check_options = {};
    // Install a TraceContext (causal spans + metrics) over this testbed.
    // Default off — tracing is opt-in per scenario so benches and the bulk
    // of the suite measure the uninstrumented fast path. No effect when the
    // build has DCDO_TRACING off.
    bool tracing = false;
    trace::TraceContext::Options trace_options = {};
  };

  explicit Testbed(const Options& options);
  Testbed() : Testbed(Options{}) {}
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulation& simulation() { return simulation_; }
  const sim::CostModel& cost_model() const { return network_->cost_model(); }
  sim::SimNetwork& network() { return *network_; }
  BindingAgent& agent() { return agent_; }
  NameService& names() { return names_; }
  rpc::RpcTransport& transport() { return *transport_; }
  NativeCodeRegistry& registry() { return registry_; }

  sim::SimHost* host(std::size_t index) { return hosts_.at(index).get(); }
  std::size_t host_count() const { return hosts_.size(); }

  // Hosts serving directory shards (empty unless the cost model opts into
  // the sharded/leased naming directory; see CostModel::NamingDirectoryModeled).
  // Shard hosts take NodeIds above the regular host range.
  sim::SimHost* shard_host(std::size_t shard) {
    return shard_hosts_.at(shard).get();
  }
  std::size_t shard_host_count() const { return shard_hosts_.size(); }

  // A client running on host `index` with its own binding cache.
  std::unique_ptr<rpc::RpcClient> MakeClient(std::size_t host_index);

  // Drives the simulation until idle.
  void RunAll() { simulation_.Run(); }

  // The installed checking context, or nullptr when checking is off (by
  // option or because the build has DCDO_CHECKING off).
  check::CheckContext* checker() { return checker_.get(); }

  // The installed tracing context, or nullptr when tracing is off (by
  // option or because the build has DCDO_TRACING off).
  trace::TraceContext* tracer() { return tracer_.get(); }

  // Exports the collected trace as Chrome trace-event JSON (chrome://tracing
  // / Perfetto). Snapshots the substrate counters into the metrics registry
  // first so the export carries them. Fails when tracing is not installed.
  [[nodiscard]] Status DumpTrace(const std::string& path);

 private:
  sim::Simulation simulation_;
  // The options' cost model after resolving the effective sim_workers (the
  // DCDO_SIM_WORKERS override, refused when unsafe; tracing forces 1).
  sim::CostModel cost_model_;
  std::unique_ptr<check::CheckContext> checker_;
  std::unique_ptr<trace::TraceContext> tracer_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::vector<std::unique_ptr<sim::SimHost>> hosts_;
  std::vector<std::unique_ptr<sim::SimHost>> shard_hosts_;
  BindingAgent agent_;
  NameService names_;
  std::unique_ptr<rpc::RpcTransport> transport_;
  NativeCodeRegistry registry_;
};

}  // namespace dcdo
