// ClassObject: Legion's per-type manager for normal (monolithic) objects.
//
// In Legion every object belongs to a class object that creates, locates,
// migrates, and (expensively) evolves its instances. This is the baseline
// the paper measures DCDOs against. Evolving a monolithic instance runs the
// full traditional pipeline the paper enumerates in Section 4:
//
//   capture the object's state
//   -> deactivate the old process (its address silently dies; clients hold
//      stale bindings until their timeout/rebind protocol fires)
//   -> download the new executable to the host, unless already present
//   -> spawn a new process and load the executable
//   -> restore the captured state into the new process
//   -> re-register the (new) address with the binding agent.
//
// With the calibrated cost model, evolving a 5.1 MB object this way costs
// tens of seconds — the number the DCDO mechanism's sub-second evolution is
// compared against.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/object_id.h"
#include "common/status.h"
#include "naming/binding_agent.h"
#include "rpc/transport.h"
#include "runtime/method_table.h"
#include "sim/host.h"

namespace dcdo {

// A versioned monolithic executable: the unit a normal object's behaviour
// is frozen into.
struct Executable {
  std::string name;        // e.g. "server-v2"
  std::size_t bytes = 0;   // image size (drives download cost)
  MethodTable methods;     // behaviour compiled into this executable
};

class ClassObject {
 public:
  // `home` is where the class object runs and where executables are stored;
  // instances download executables from here.
  ClassObject(std::string class_name, sim::SimHost* home,
              rpc::RpcTransport* transport, BindingAgent* agent);
  ~ClassObject();

  ClassObject(const ClassObject&) = delete;
  ClassObject& operator=(const ClassObject&) = delete;

  const std::string& class_name() const { return class_name_; }
  const ObjectId& id() const { return id_; }

  // Registers an executable version; the first registered one becomes
  // current. Returns its index.
  std::size_t AddExecutable(Executable executable);
  [[nodiscard]] Status SetCurrentExecutable(std::size_t index);
  const Executable& current_executable() const {
    return executables_[current_executable_];
  }

  // --- Instance lifecycle (all asynchronous, completing in sim time) ---

  using CreateCallback = std::function<void(Result<ObjectId>)>;
  using DoneCallback = std::function<void(Status)>;

  // Creates an instance on `host` running the current executable, with
  // `initial_state_bytes` of application state. Pays executable download
  // (if absent on the host), process spawn + load, and the activation
  // handshake with the class object.
  void CreateInstance(sim::SimHost* host, std::size_t initial_state_bytes,
                      CreateCallback done);

  // Evolves `instance` to the executable at `executable_index` via the full
  // monolithic pipeline described above. The instance's address changes;
  // client binding caches are NOT updated (that is the point).
  void EvolveInstance(const ObjectId& instance, std::size_t executable_index,
                      DoneCallback done);

  // Moves `instance` to `dest`: capture state -> transfer state + download
  // executable at dest (if absent) -> spawn -> restore -> rebind.
  void MigrateInstance(const ObjectId& instance, sim::SimHost* dest,
                       DoneCallback done);

  // Deactivates and forgets the instance.
  [[nodiscard]] Status DestroyInstance(const ObjectId& instance);

  // --- Introspection ---
  std::size_t instance_count() const { return instances_.size(); }
  bool HasInstance(const ObjectId& instance) const {
    return instances_.contains(instance);
  }
  [[nodiscard]] Result<std::size_t> InstanceExecutable(const ObjectId& instance) const;
  [[nodiscard]] Result<sim::NodeId> InstanceNode(const ObjectId& instance) const;

  // Direct (test-only) access to an instance's state.
  [[nodiscard]] Result<InstanceState*> MutableInstanceState(const ObjectId& instance);

 private:
  struct Instance {
    sim::SimHost* host = nullptr;
    sim::ProcessId pid = 0;
    std::uint64_t epoch = 0;
    std::size_t executable_index = 0;
    InstanceState state;
    bool active = false;
  };

  // Ensures `executable` is in `host`'s file store; `done` runs when it is.
  void EnsureExecutableOnHost(sim::SimHost* host, std::size_t executable_index,
                              DoneCallback done);
  void ActivateInstance(const ObjectId& instance_id, sim::SimHost* host,
                        std::size_t executable_index, DoneCallback done);
  std::string ExecutableFileName(std::size_t index) const;
  void RegisterEndpoint(const ObjectId& instance_id);

  std::string class_name_;
  ObjectId id_;
  sim::SimHost& home_;
  rpc::RpcTransport& transport_;
  BindingAgent& agent_;
  sim::ProcessId pid_ = 0;
  std::vector<Executable> executables_;
  std::size_t current_executable_ = 0;
  std::map<ObjectId, Instance> instances_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace dcdo
