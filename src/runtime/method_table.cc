#include "runtime/method_table.h"

namespace dcdo {

void MethodTable::Add(const std::string& name, MethodFn fn) {
  methods_[name] = std::move(fn);
}

Result<const MethodFn*> MethodTable::Find(const std::string& name) const {
  auto it = methods_.find(name);
  if (it == methods_.end()) {
    return NotFoundError("no method '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> MethodTable::MethodNames() const {
  std::vector<std::string> out;
  out.reserve(methods_.size());
  for (const auto& [name, fn] : methods_) out.push_back(name);
  return out;
}

}  // namespace dcdo
