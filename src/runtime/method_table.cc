#include "runtime/method_table.h"

#include <algorithm>

namespace dcdo {

void MethodTable::Add(const std::string& name, MethodFn fn) {
  methods_[FunctionNameTable::Global().Intern(name)] = std::move(fn);
}

Result<const MethodFn*> MethodTable::Find(std::string_view name) const {
  // Find, not Intern: an unknown method name must not grow the global table.
  FunctionId id = FunctionNameTable::Global().Find(name);
  if (id.valid()) {
    auto it = methods_.find(id);
    if (it != methods_.end()) return &it->second;
  }
  return NotFoundError("no method '" + std::string(name) + "'");
}

Result<const MethodFn*> MethodTable::Find(FunctionId id) const {
  auto it = methods_.find(id);
  if (it == methods_.end()) {
    return NotFoundError("no method '" +
                         (id.valid()
                              ? FunctionNameTable::Global().NameOf(id)
                              : std::string()) +
                         "'");
  }
  return &it->second;
}

bool MethodTable::Has(std::string_view name) const {
  FunctionId id = FunctionNameTable::Global().Find(name);
  return id.valid() && methods_.contains(id);
}

std::vector<std::string> MethodTable::MethodNames() const {
  std::vector<std::string> out;
  out.reserve(methods_.size());
  const FunctionNameTable& names = FunctionNameTable::Global();
  for (const auto& [id, fn] : methods_) out.push_back(names.NameOf(id));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dcdo
