#include "runtime/class_object.h"

#include "common/logging.h"

namespace dcdo {

ClassObject::ClassObject(std::string class_name, sim::SimHost* home,
                         rpc::RpcTransport* transport, BindingAgent* agent)
    : class_name_(std::move(class_name)),
      id_(ObjectId::Next(domains::kClassObject)),
      home_(*home),
      transport_(*transport),
      agent_(*agent) {
  pid_ = home_.AdoptProcess(id_);
  agent_.Bind(id_, ObjectAddress{home_.node(), pid_, /*epoch=*/1});
}

ClassObject::~ClassObject() {
  for (auto& [instance_id, instance] : instances_) {
    if (instance.active) {
      transport_.UnregisterEndpoint(instance.host->node(), instance.pid);
      (void)instance.host->KillProcess(instance.pid);
      agent_.Unbind(instance_id);
    }
  }
  agent_.Unbind(id_);
  (void)home_.KillProcess(pid_);
}

std::size_t ClassObject::AddExecutable(Executable executable) {
  executables_.push_back(std::move(executable));
  std::size_t index = executables_.size() - 1;
  // The class object's home host holds the master copy of every executable.
  home_.StoreFile(ExecutableFileName(index), executables_[index].bytes);
  return index;
}

Status ClassObject::SetCurrentExecutable(std::size_t index) {
  if (index >= executables_.size()) {
    return OutOfRangeError("no executable " + std::to_string(index) +
                           " in class " + class_name_);
  }
  current_executable_ = index;
  return Status::Ok();
}

std::string ClassObject::ExecutableFileName(std::size_t index) const {
  return "exec/" + class_name_ + "/" + executables_[index].name;
}

void ClassObject::EnsureExecutableOnHost(sim::SimHost* host,
                                         std::size_t executable_index,
                                         DoneCallback done) {
  const std::string file = ExecutableFileName(executable_index);
  if (host->HasFile(file)) {
    done(Status::Ok());
    return;
  }
  std::size_t bytes = executables_[executable_index].bytes;
  DCDO_LOG(kDebug) << class_name_ << ": downloading " << file << " ("
                   << bytes << "B) to node " << host->node();
  home_.network().BulkTransfer(
      home_.node(), host->node(), bytes,
      [host, file, bytes, done = std::move(done)]() {
        host->StoreFile(file, bytes);
        done(Status::Ok());
      });
}

void ClassObject::RegisterEndpoint(const ObjectId& instance_id) {
  Instance& instance = instances_.at(instance_id);
  std::size_t executable_index = instance.executable_index;
  transport_.RegisterEndpoint(
      instance.host->node(), instance.pid, instance.epoch,
      [this, instance_id, executable_index](
          const rpc::MethodInvocation& invocation, rpc::ReplyFn reply) {
        auto it = instances_.find(instance_id);
        if (it == instances_.end()) {
          reply(rpc::MethodResult::Error(
              UnavailableError("instance destroyed")));
          return;
        }
        const MethodTable& methods = executables_[executable_index].methods;
        // By-id wire form: index the FunctionId-keyed table directly, no
        // string hashing; by-name covers first contact and never-interned
        // methods.
        FunctionId id = invocation.ResolvedId();
        Result<const MethodFn*> method =
            id.valid() ? methods.Find(id)
                       : methods.Find(invocation.method_name());
        if (!method.ok()) {
          reply(rpc::MethodResult::Error(method.status()));
          return;
        }
        Result<ByteBuffer> result =
            (**method)(it->second.state, invocation.args());
        if (result.ok()) {
          reply(rpc::MethodResult::Ok(std::move(result).value()));
        } else {
          reply(rpc::MethodResult::Error(result.status()));
        }
      });
}

void ClassObject::ActivateInstance(const ObjectId& instance_id,
                                   sim::SimHost* host,
                                   std::size_t executable_index,
                                   DoneCallback done) {
  std::size_t exec_bytes = executables_[executable_index].bytes;
  host->SpawnProcess(
      instance_id, exec_bytes,
      [this, instance_id, host, executable_index,
       done = std::move(done)](sim::ProcessId pid) {
        Instance& instance = instances_[instance_id];
        instance.host = host;
        instance.pid = pid;
        instance.epoch = next_epoch_++;
        instance.executable_index = executable_index;
        instance.active = true;
        RegisterEndpoint(instance_id);
        agent_.Bind(instance_id,
                    ObjectAddress{host->node(), pid, instance.epoch});
        // Activation handshake with the class object completes creation.
        sim::Simulation& simulation = home_.simulation();
        simulation.Schedule(home_.cost_model().activation_handshake,
                            [done = std::move(done)]() { done(Status::Ok()); });
      });
}

void ClassObject::CreateInstance(sim::SimHost* host,
                                 std::size_t initial_state_bytes,
                                 CreateCallback done) {
  ObjectId instance_id = ObjectId::Next(domains::kInstance);
  Instance& instance = instances_[instance_id];
  instance.state.logical_size = initial_state_bytes;
  std::size_t executable_index = current_executable_;
  EnsureExecutableOnHost(
      host, executable_index,
      [this, instance_id, host, executable_index,
       done = std::move(done)](Status status) {
        if (!status.ok()) {
          instances_.erase(instance_id);
          done(status);
          return;
        }
        ActivateInstance(instance_id, host, executable_index,
                         [instance_id, done = std::move(done)](Status status) {
                           if (!status.ok()) {
                             done(status);
                           } else {
                             done(instance_id);
                           }
                         });
      });
}

void ClassObject::EvolveInstance(const ObjectId& instance_id,
                                 std::size_t executable_index,
                                 DoneCallback done) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) {
    done(NotFoundError("no instance " + instance_id.ToString()));
    return;
  }
  if (executable_index >= executables_.size()) {
    done(OutOfRangeError("no executable " + std::to_string(executable_index)));
    return;
  }
  Instance& instance = it->second;
  sim::SimHost* host = instance.host;
  sim::Simulation& simulation = home_.simulation();
  const sim::CostModel& cost = home_.cost_model();

  // 1. Capture the object's state.
  std::size_t state_bytes = instance.state.CaptureSize();
  simulation.Schedule(cost.StateCapture(state_bytes), [this, instance_id,
                                                       host, executable_index,
                                                       state_bytes,
                                                       done = std::move(
                                                           done)]() mutable {
    auto it = instances_.find(instance_id);
    if (it == instances_.end()) {
      done(NotFoundError("instance destroyed during evolution"));
      return;
    }
    // 2. Deactivate the old process. The binding agent keeps no entry for
    //    the object until reactivation; clients' cached bindings are stale.
    Instance& instance = it->second;
    transport_.UnregisterEndpoint(instance.host->node(), instance.pid);
    (void)instance.host->KillProcess(instance.pid);
    instance.active = false;
    agent_.Unbind(instance_id);
    DCDO_LOG(kDebug) << class_name_ << ": instance " << instance_id
                     << " deactivated for evolution";

    // 3. Download the new executable to the host (if absent).
    EnsureExecutableOnHost(
        host, executable_index,
        [this, instance_id, host, executable_index, state_bytes,
         done = std::move(done)](Status status) mutable {
          if (!status.ok()) {
            done(status);
            return;
          }
          // 4. Spawn the new process (reloads the executable)...
          ActivateInstance(
              instance_id, host, executable_index,
              [this, instance_id, state_bytes,
               done = std::move(done)](Status status) {
                if (!status.ok()) {
                  done(status);
                  return;
                }
                // 5. ...and read the captured state back in.
                sim::Simulation& simulation = home_.simulation();
                simulation.Schedule(
                    home_.cost_model().StateRestore(state_bytes),
                    [done = std::move(done)]() { done(Status::Ok()); });
              });
        });
  });
}

void ClassObject::MigrateInstance(const ObjectId& instance_id,
                                  sim::SimHost* dest, DoneCallback done) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) {
    done(NotFoundError("no instance " + instance_id.ToString()));
    return;
  }
  Instance& instance = it->second;
  std::size_t executable_index = instance.executable_index;
  std::size_t state_bytes = instance.state.CaptureSize();
  sim::SimHost* source = instance.host;
  sim::Simulation& simulation = home_.simulation();
  const sim::CostModel& cost = home_.cost_model();

  simulation.Schedule(
      cost.StateCapture(state_bytes),
      [this, instance_id, source, dest, executable_index, state_bytes,
       done = std::move(done)]() mutable {
        auto it = instances_.find(instance_id);
        if (it == instances_.end()) {
          done(NotFoundError("instance destroyed during migration"));
          return;
        }
        Instance& instance = it->second;
        transport_.UnregisterEndpoint(instance.host->node(), instance.pid);
        (void)instance.host->KillProcess(instance.pid);
        instance.active = false;
        agent_.Unbind(instance_id);

        // State travels to the destination while the executable is fetched.
        source->network().BulkTransfer(
            source->node(), dest->node(), state_bytes,
            [this, instance_id, dest, executable_index, state_bytes,
             done = std::move(done)]() mutable {
              EnsureExecutableOnHost(
                  dest, executable_index,
                  [this, instance_id, dest, executable_index, state_bytes,
                   done = std::move(done)](Status status) mutable {
                    if (!status.ok()) {
                      done(status);
                      return;
                    }
                    ActivateInstance(
                        instance_id, dest, executable_index,
                        [this, instance_id, state_bytes,
                         done = std::move(done)](Status status) {
                          if (!status.ok()) {
                            done(status);
                            return;
                          }
                          home_.simulation().Schedule(
                              home_.cost_model().StateRestore(state_bytes),
                              [done = std::move(done)]() {
                                done(Status::Ok());
                              });
                        });
                  });
            });
      });
}

Status ClassObject::DestroyInstance(const ObjectId& instance_id) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) {
    return NotFoundError("no instance " + instance_id.ToString());
  }
  Instance& instance = it->second;
  if (instance.active) {
    transport_.UnregisterEndpoint(instance.host->node(), instance.pid);
    (void)instance.host->KillProcess(instance.pid);
    agent_.Unbind(instance_id);
  }
  instances_.erase(it);
  return Status::Ok();
}

Result<std::size_t> ClassObject::InstanceExecutable(
    const ObjectId& instance) const {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    return NotFoundError("no instance " + instance.ToString());
  }
  return it->second.executable_index;
}

Result<sim::NodeId> ClassObject::InstanceNode(const ObjectId& instance) const {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    return NotFoundError("no instance " + instance.ToString());
  }
  return it->second.host->node();
}

Result<InstanceState*> ClassObject::MutableInstanceState(
    const ObjectId& instance) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    return NotFoundError("no instance " + instance.ToString());
  }
  return &it->second.state;
}

}  // namespace dcdo
