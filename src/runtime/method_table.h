// Method tables for normal (monolithic) Legion objects.
//
// A traditional object's behaviour "is generally fixed at compile and link
// time": its methods are a static table baked into the executable. This is
// the baseline the DCDO mechanism is compared against — changing any method
// of such an object means replacing the whole executable (see
// ClassObject::EvolveInstance).
//
// Methods are keyed by interned FunctionId, the same dense handles the DFM
// uses: registration interns the name once, and dispatch — whether by name
// or by a pre-resolved id — is a single flat hash probe with no string
// comparisons.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dfm/function_id.h"

namespace dcdo {

// Mutable per-instance application state a method operates on.
struct InstanceState {
  ByteBuffer data;          // captured/restored on evolution and migration
  std::size_t logical_size = 0;  // app-declared state size for cost accounting

  std::size_t CaptureSize() const {
    return logical_size > 0 ? logical_size : data.size();
  }
};

using MethodFn =
    std::function<Result<ByteBuffer>(InstanceState&, const ByteBuffer&)>;

class MethodTable {
 public:
  // Replaces any existing binding for `name`. Interns the name.
  void Add(const std::string& name, MethodFn fn);

  [[nodiscard]] Result<const MethodFn*> Find(std::string_view name) const;
  // Pre-resolved dispatch: no name lookup at all.
  [[nodiscard]] Result<const MethodFn*> Find(FunctionId id) const;
  bool Has(std::string_view name) const;
  std::size_t size() const { return methods_.size(); }

  // Sorted, for stable interface listings.
  std::vector<std::string> MethodNames() const;

 private:
  std::unordered_map<FunctionId, MethodFn> methods_;
};

}  // namespace dcdo
