// Method tables for normal (monolithic) Legion objects.
//
// A traditional object's behaviour "is generally fixed at compile and link
// time": its methods are a static table baked into the executable. This is
// the baseline the DCDO mechanism is compared against — changing any method
// of such an object means replacing the whole executable (see
// ClassObject::EvolveInstance).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace dcdo {

// Mutable per-instance application state a method operates on.
struct InstanceState {
  ByteBuffer data;          // captured/restored on evolution and migration
  std::size_t logical_size = 0;  // app-declared state size for cost accounting

  std::size_t CaptureSize() const {
    return logical_size > 0 ? logical_size : data.size();
  }
};

using MethodFn =
    std::function<Result<ByteBuffer>(InstanceState&, const ByteBuffer&)>;

class MethodTable {
 public:
  // Replaces any existing binding for `name`.
  void Add(const std::string& name, MethodFn fn);

  Result<const MethodFn*> Find(const std::string& name) const;
  bool Has(const std::string& name) const { return methods_.contains(name); }
  std::size_t size() const { return methods_.size(); }

  std::vector<std::string> MethodNames() const;

 private:
  std::map<std::string, MethodFn> methods_;
};

}  // namespace dcdo
