// Thread-local free-list pooling for fixed-size hot-path allocations.
//
// Every remote call burns a handful of same-sized heap blocks: the call-state
// control block, the shared argument buffer, and any closure too big for a
// MoveFunction's inline buffer. Each lives for exactly one call, so the
// general-purpose allocator's work (size-class lookup, thread cache, frees
// that may hit the page heap) is pure overhead — the block that was freed by
// the previous call is always the right size for the next one. These pools
// turn that pattern into a push/pop on a thread-local vector.
//
// Sizes are rounded to 64-byte classes so closures that differ by a capture
// still share a bucket. Blocks come from (and overflow back to) ::operator
// new, which guarantees max_align_t alignment — callers needing more must
// allocate directly. Buckets are bounded: a burst can grow one, but it drains
// back to the global allocator past the cap, so an idle thread retains at
// most kMaxFreeBlocks blocks per size class.
#ifndef DCDO_COMMON_POOL_ALLOCATOR_H_
#define DCDO_COMMON_POOL_ALLOCATOR_H_

#include <cstddef>
#include <new>
#include <vector>

namespace dcdo::common {
namespace pool_internal {

inline constexpr std::size_t kMaxFreeBlocks = 256;

// Holds the free list and returns retained blocks to the global allocator
// when the owning thread exits — without this, every block parked in an
// exiting thread's bucket would leak (LeakSanitizer flags it).
struct BucketStore {
  std::vector<void*> blocks;
  ~BucketStore() {
    for (void* block : blocks) ::operator delete(block);
  }
};

template <std::size_t kClassBytes>
inline std::vector<void*>& Bucket() {
  thread_local BucketStore bucket;
  return bucket.blocks;
}

constexpr std::size_t SizeClass(std::size_t bytes) {
  return (bytes + 63) & ~std::size_t{63};
}

}  // namespace pool_internal

// Pops a block big enough for `kBytes` (alignment: max_align_t) from the
// calling thread's pool, falling back to ::operator new.
template <std::size_t kBytes>
void* PoolAllocate() {
  constexpr std::size_t kClass = pool_internal::SizeClass(kBytes);
  std::vector<void*>& bucket = pool_internal::Bucket<kClass>();
  if (!bucket.empty()) {
    void* block = bucket.back();
    bucket.pop_back();
    return block;
  }
  return ::operator new(kClass);
}

// Returns a PoolAllocate<kBytes>() block to the calling thread's pool (which
// need not be the allocating thread — blocks migrate freely; every bucket
// holds interchangeable ::operator new storage of its class size).
template <std::size_t kBytes>
void PoolFree(void* block) noexcept {
  constexpr std::size_t kClass = pool_internal::SizeClass(kBytes);
  std::vector<void*>& bucket = pool_internal::Bucket<kClass>();
  if (bucket.size() < pool_internal::kMaxFreeBlocks) {
    bucket.push_back(block);
    return;
  }
  ::operator delete(block);
}

// Standard allocator over the pools, for allocate_shared: the one-shot
// control-block-plus-object node a shared_ptr mints per call comes from the
// pool instead of malloc. Over-aligned types bypass the pools (they are
// plain ::operator new storage).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    if constexpr (alignof(T) > alignof(std::max_align_t)) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
    } else {
      if (n == 1) return static_cast<T*>(PoolAllocate<sizeof(T)>());
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if constexpr (alignof(T) > alignof(std::max_align_t)) {
      ::operator delete(p, n * sizeof(T), std::align_val_t{alignof(T)});
    } else {
      if (n == 1) {
        PoolFree<sizeof(T)>(p);
        return;
      }
      ::operator delete(p);
    }
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

}  // namespace dcdo::common

#endif  // DCDO_COMMON_POOL_ALLOCATOR_H_
