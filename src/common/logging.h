// Lightweight leveled logging.
//
// The runtime and benches log object lifecycle events (creation, evolution,
// rebinds). Logging defaults to kWarning so tests and benchmarks stay quiet;
// examples raise it to kInfo to narrate what the system is doing.
#pragma once

#include <sstream>
#include <string>

namespace dcdo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr (thread-safe).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= GetLogLevel()) LogMessage(level_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= GetLogLevel()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define DCDO_LOG(level) \
  ::dcdo::internal::LogLine(::dcdo::LogLevel::level)

}  // namespace dcdo
