#include "common/status.h"

namespace dcdo {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kStaleBinding: return "STALE_BINDING";
    case ErrorCode::kFunctionDisabled: return "FUNCTION_DISABLED";
    case ErrorCode::kFunctionMissing: return "FUNCTION_MISSING";
    case ErrorCode::kComponentMissing: return "COMPONENT_MISSING";
    case ErrorCode::kDependencyViolation: return "DEPENDENCY_VIOLATION";
    case ErrorCode::kPermanentViolation: return "PERMANENT_VIOLATION";
    case ErrorCode::kMandatoryViolation: return "MANDATORY_VIOLATION";
    case ErrorCode::kVersionNotInstantiable: return "VERSION_NOT_INSTANTIABLE";
    case ErrorCode::kVersionFrozen: return "VERSION_FROZEN";
    case ErrorCode::kNotDerivedVersion: return "NOT_DERIVED_VERSION";
    case ErrorCode::kActiveThreads: return "ACTIVE_THREADS";
    case ErrorCode::kArchMismatch: return "ARCH_MISMATCH";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(ErrorCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(ErrorCode::kTimeout, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status StaleBindingError(std::string message) {
  return Status(ErrorCode::kStaleBinding, std::move(message));
}
Status FunctionDisabledError(std::string message) {
  return Status(ErrorCode::kFunctionDisabled, std::move(message));
}
Status FunctionMissingError(std::string message) {
  return Status(ErrorCode::kFunctionMissing, std::move(message));
}
Status ComponentMissingError(std::string message) {
  return Status(ErrorCode::kComponentMissing, std::move(message));
}
Status DependencyViolationError(std::string message) {
  return Status(ErrorCode::kDependencyViolation, std::move(message));
}
Status PermanentViolationError(std::string message) {
  return Status(ErrorCode::kPermanentViolation, std::move(message));
}
Status MandatoryViolationError(std::string message) {
  return Status(ErrorCode::kMandatoryViolation, std::move(message));
}
Status VersionNotInstantiableError(std::string message) {
  return Status(ErrorCode::kVersionNotInstantiable, std::move(message));
}
Status VersionFrozenError(std::string message) {
  return Status(ErrorCode::kVersionFrozen, std::move(message));
}
Status NotDerivedVersionError(std::string message) {
  return Status(ErrorCode::kNotDerivedVersion, std::move(message));
}
Status ActiveThreadsError(std::string message) {
  return Status(ErrorCode::kActiveThreads, std::move(message));
}
Status ArchMismatchError(std::string message) {
  return Status(ErrorCode::kArchMismatch, std::move(message));
}

}  // namespace dcdo
