#include "common/version_id.h"

#include <charconv>

namespace dcdo {

VersionId VersionId::Root() { return VersionId({1}); }

VersionId::VersionId(std::initializer_list<std::uint32_t> parts)
    : parts_(parts) {}

VersionId::VersionId(std::vector<std::uint32_t> parts)
    : parts_(std::move(parts)) {}

Result<VersionId> VersionId::Parse(std::string_view text) {
  if (text.empty()) {
    return InvalidArgumentError("empty version identifier");
  }
  std::vector<std::uint32_t> parts;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t dot = text.find('.', pos);
    std::string_view token = text.substr(
        pos, dot == std::string_view::npos ? std::string_view::npos : dot - pos);
    if (token.empty()) {
      return InvalidArgumentError("empty component in version identifier '" +
                                  std::string(text) + "'");
    }
    std::uint32_t value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return InvalidArgumentError("non-numeric component '" +
                                  std::string(token) + "' in version '" +
                                  std::string(text) + "'");
    }
    parts.push_back(value);
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return VersionId(std::move(parts));
}

VersionId VersionId::Child(std::uint32_t ordinal) const {
  std::vector<std::uint32_t> parts = parts_;
  parts.push_back(ordinal);
  return VersionId(std::move(parts));
}

Result<VersionId> VersionId::Parent() const {
  if (parts_.size() <= 1) {
    return FailedPreconditionError("version '" + ToString() +
                                   "' has no parent");
  }
  std::vector<std::uint32_t> parts(parts_.begin(), parts_.end() - 1);
  return VersionId(std::move(parts));
}

bool VersionId::IsDerivedFrom(const VersionId& ancestor) const {
  if (!valid() || !ancestor.valid()) return false;
  if (ancestor.parts_.size() > parts_.size()) return false;
  for (std::size_t i = 0; i < ancestor.parts_.size(); ++i) {
    if (parts_[i] != ancestor.parts_[i]) return false;
  }
  return true;
}

bool VersionId::IsStrictlyDerivedFrom(const VersionId& ancestor) const {
  return IsDerivedFrom(ancestor) && *this != ancestor;
}

std::string VersionId::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(parts_[i]);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const VersionId& v) {
  return os << v.ToString();
}

std::size_t VersionIdHash::operator()(const VersionId& v) const {
  std::size_t h = 0xcbf29ce484222325ull;
  for (std::uint32_t part : v.parts()) {
    h ^= part;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace dcdo
