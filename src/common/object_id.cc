#include "common/object_id.h"

#include <atomic>

namespace dcdo {
namespace {
std::atomic<std::uint64_t> g_counter{1};
}  // namespace

ObjectId ObjectId::Next(std::uint64_t domain) {
  return ObjectId(domain, g_counter.fetch_add(1, std::memory_order_relaxed));
}

void ObjectId::ResetCounterForTest() {
  g_counter.store(1, std::memory_order_relaxed);
}

std::string ObjectId::ToString() const {
  if (nil()) return "<nil>";
  return std::to_string(domain_) + ":" + std::to_string(instance_);
}

std::ostream& operator<<(std::ostream& os, const ObjectId& id) {
  return os << id.ToString();
}

}  // namespace dcdo
