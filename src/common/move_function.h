// A move-only callable wrapper with a large inline buffer.
//
// The simulation's hot path converts a handful of closures per remote call
// (delivery, reply, timeout) into type-erased callables. std::function heap-
// allocates for any capture that is not trivially copyable and <= 16 bytes,
// which puts several malloc/free pairs on every event. MoveFunction trades
// copyability (never needed for one-shot event callbacks) for a buffer big
// enough to hold the engine's nested closures inline, so the common case
// allocates nothing. Callables larger than the buffer still work — they fall
// back to the heap transparently.
#ifndef DCDO_COMMON_MOVE_FUNCTION_H_
#define DCDO_COMMON_MOVE_FUNCTION_H_

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/pool_allocator.h"

namespace dcdo::common {

template <typename Signature, std::size_t kInlineBytes>
class MoveFunction;

template <typename R, typename... Args, std::size_t kInlineBytes>
class MoveFunction<R(Args...), kInlineBytes> {
 public:
  MoveFunction() = default;
  MoveFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, MoveFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  MoveFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else if constexpr (alignof(D) <= alignof(std::max_align_t)) {
      // Spilled closures are one-shot and clustered in size (a marshaled
      // invocation, a reply continuation), so they recycle through the
      // thread-local block pools instead of malloc. The block must go back
      // to the pool if the capture's move/copy constructor throws.
      void* block = PoolAllocate<sizeof(D)>();
      D* d;
      try {
        d = ::new (block) D(std::forward<F>(f));
      } catch (...) {
        PoolFree<sizeof(D)>(block);
        throw;
      }
      ::new (static_cast<void*>(storage_)) D*(d);
      ops_ = &kPooledHeapOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  MoveFunction(MoveFunction&& other) noexcept { MoveFrom(other); }

  MoveFunction& operator=(MoveFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  MoveFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  MoveFunction(const MoveFunction&) = delete;
  MoveFunction& operator=(const MoveFunction&) = delete;

  ~MoveFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Invoking an empty (default-constructed, moved-from, or nulled)
  // MoveFunction is a programming error — the std::function these replaced
  // threw bad_function_call. Fail loudly in every build mode rather than
  // dereferencing a null ops_.
  R operator()(Args... args) {
    if (ops_ == nullptr) {
      std::fputs("MoveFunction: invoked while empty\n", stderr);
      std::abort();
    }
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Move-constructs the callable from `from` into `to`, destroying the
    // source. Heap-held callables just transfer the pointer.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        ::new (to) D*(*std::launder(reinterpret_cast<D**>(from)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
  };

  // Like kHeapOps, but the block came from (and returns to) the pools.
  template <typename D>
  static constexpr Ops kPooledHeapOps = {
      [](void* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        ::new (to) D*(*std::launder(reinterpret_cast<D**>(from)));
      },
      [](void* s) noexcept {
        D* d = *std::launder(reinterpret_cast<D**>(s));
        d->~D();
        PoolFree<sizeof(D)>(d);
      },
  };

  void MoveFrom(MoveFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace dcdo::common

#endif  // DCDO_COMMON_MOVE_FUNCTION_H_
