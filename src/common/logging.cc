#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dcdo {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace dcdo
