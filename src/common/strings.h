// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dcdo {

// Splits on a single-character delimiter; empty tokens are preserved.
std::vector<std::string> Split(std::string_view text, char delimiter);

// Joins with a delimiter string.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter);

// printf-style convenience used for log/bench labels.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// "1.5 MB", "200 us", etc. — used by benches to mirror the paper's units.
std::string HumanBytes(std::size_t bytes);
std::string HumanSeconds(double seconds);

}  // namespace dcdo
