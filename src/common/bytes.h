// ByteBuffer: the unit of data moved by the RPC layer and stored in
// implementation component objects (executable images, captured object state).
//
// A thin wrapper over std::vector<std::byte> with append/read cursors used by
// the serialization archive. Sizes matter throughout the system — transfer
// cost in the simulator is a function of ByteBuffer::size() — so the type also
// offers a constructor that fabricates an opaque payload of a given size
// (e.g. a "5.1 MB executable") without materially spending memory bandwidth
// on contents that are never inspected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace dcdo {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> data) : data_(std::move(data)) {}

  // An opaque payload of `size` bytes whose contents encode a repeating
  // fingerprint of `seed` (cheap to create, checkable by tests).
  static ByteBuffer Opaque(std::size_t size, std::uint8_t seed = 0xA5);

  static ByteBuffer FromString(std::string_view text);

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const std::byte* data() const { return data_.data(); }
  std::span<const std::byte> span() const { return data_; }

  // Pre-grows capacity so a writer producing a message of known rough size
  // appends without intermediate reallocations.
  void Reserve(std::size_t capacity) { data_.reserve(capacity); }
  std::size_t capacity() const { return data_.capacity(); }

  // Drops contents but keeps capacity — the reuse half of buffer pooling.
  void Clear() { data_.clear(); }

  void Append(const void* bytes, std::size_t count);
  void AppendBuffer(const ByteBuffer& other);

  // Reads `count` bytes at `offset` into `out`; false if out of range.
  bool ReadAt(std::size_t offset, void* out, std::size_t count) const;

  std::string ToString() const;

  friend bool operator==(const ByteBuffer&, const ByteBuffer&) = default;

 private:
  std::vector<std::byte> data_;
};

}  // namespace dcdo
