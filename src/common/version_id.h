// Version identifiers (paper Section 2.1).
//
// "A version identifier is an array of positive integers that identifies some
// version of an object type's implementation." Versions form a tree: deriving
// a new version from `V` yields a child of `V`, and evolution policies such as
// the increasing-version-number policy (Section 3.5) only permit evolution to
// versions *derived from* the current one — i.e. descendants in this tree.
//
// We encode derivation structurally: a child of [3,2] is [3,2,k] for some k,
// and sibling order is tracked by the final integer. `IsDerivedFrom` is thus a
// pure prefix test, exactly matching the paper's example that "a version 3.2
// DCDO can evolve to version 3.2.1 or to version 3.2.0.4, but not to 3.3".
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dcdo {

class VersionId {
 public:
  // The root version of every type's tree: "1".
  static VersionId Root();

  VersionId() = default;  // empty / invalid
  VersionId(std::initializer_list<std::uint32_t> parts);
  explicit VersionId(std::vector<std::uint32_t> parts);

  // Parses a dotted string, e.g. "3.2.0.4". Parts must be non-negative
  // integers; the identifier must be non-empty.
  [[nodiscard]] static Result<VersionId> Parse(std::string_view text);

  bool valid() const { return !parts_.empty(); }
  std::size_t depth() const { return parts_.size(); }
  const std::vector<std::uint32_t>& parts() const { return parts_; }

  // Child of this version with the given final ordinal, e.g.
  // VersionId({3,2}).Child(1) == 3.2.1.
  VersionId Child(std::uint32_t ordinal) const;

  // Parent in the version tree; error if this is a depth-1 (root-level) id.
  [[nodiscard]] Result<VersionId> Parent() const;

  // True if `this` is `ancestor` or a descendant of `ancestor` in the version
  // tree (prefix relation). Every version derives from itself.
  bool IsDerivedFrom(const VersionId& ancestor) const;

  // True if `this` is a strict descendant (derived and not equal).
  bool IsStrictlyDerivedFrom(const VersionId& ancestor) const;

  // Dotted representation, e.g. "3.2.1".
  std::string ToString() const;

  friend bool operator==(const VersionId&, const VersionId&) = default;
  // Lexicographic; gives a deterministic total order for map keys.
  friend std::strong_ordering operator<=>(const VersionId& a,
                                          const VersionId& b) {
    return a.parts_ <=> b.parts_;
  }

 private:
  std::vector<std::uint32_t> parts_;
};

std::ostream& operator<<(std::ostream& os, const VersionId& v);

struct VersionIdHash {
  std::size_t operator()(const VersionId& v) const;
};

}  // namespace dcdo
