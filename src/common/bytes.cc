#include "common/bytes.h"

namespace dcdo {

ByteBuffer ByteBuffer::Opaque(std::size_t size, std::uint8_t seed) {
  std::vector<std::byte> data(size);
  // A cheap repeating pattern derived from the seed; tests can verify that a
  // transferred buffer arrived intact without storing a second copy.
  for (std::size_t i = 0; i < size; i += 4096) {
    data[i] = static_cast<std::byte>(seed ^ (i >> 12));
  }
  if (size > 0) data[size - 1] = static_cast<std::byte>(seed);
  return ByteBuffer(std::move(data));
}

ByteBuffer ByteBuffer::FromString(std::string_view text) {
  std::vector<std::byte> data(text.size());
  std::memcpy(data.data(), text.data(), text.size());
  return ByteBuffer(std::move(data));
}

void ByteBuffer::Append(const void* bytes, std::size_t count) {
  const auto* p = static_cast<const std::byte*>(bytes);
  data_.insert(data_.end(), p, p + count);
}

void ByteBuffer::AppendBuffer(const ByteBuffer& other) {
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

bool ByteBuffer::ReadAt(std::size_t offset, void* out, std::size_t count) const {
  if (offset + count > data_.size()) return false;
  std::memcpy(out, data_.data() + offset, count);
  return true;
}

std::string ByteBuffer::ToString() const {
  return std::string(reinterpret_cast<const char*>(data_.data()), data_.size());
}

}  // namespace dcdo
