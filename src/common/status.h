// Error model for the DCDO library.
//
// All fallible operations in the library return either `Status` (no payload) or
// `Result<T>` (payload or error). This mirrors the style of wide-area systems
// where a remote call can fail for reasons the caller must handle explicitly —
// the paper (Section 3.2) requires that "invocations on a dynamic function
// should be written to expect the absence of the function", so absence is an
// ordinary, typed error here, not an exception.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dcdo {

// Canonical error space for the whole system. Codes are deliberately coarse;
// the message carries detail.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  // Generic argument / state errors.
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // Distributed-system errors.
  kTimeout,          // an RPC or transfer exceeded its deadline
  kUnavailable,      // target object not active / host down
  kStaleBinding,     // cached object address no longer valid
  // DCDO-specific errors (Section 3.1 problem classes).
  kFunctionDisabled,     // call arrived for a disabled dynamic function
  kFunctionMissing,      // no implementation of the function exists in the DFM
  kComponentMissing,     // referenced component not incorporated
  kDependencyViolation,  // config change would violate a Type A-D dependency
  kPermanentViolation,   // config change would alter a permanent function
  kMandatoryViolation,   // config change would remove a mandatory function
  kVersionNotInstantiable,  // tried to use a configurable (unfrozen) version
  kVersionFrozen,           // tried to configure an instantiable version
  kNotDerivedVersion,       // evolution target not in the version subtree
  kActiveThreads,           // removal blocked by nonzero active-thread count
  kArchMismatch,            // implementation type incompatible with host
};

// Human-readable name of a code, e.g. "FUNCTION_DISABLED".
std::string_view ErrorCodeName(ErrorCode code);

// A Status is either OK or an (ErrorCode, message) pair. Cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, e.g. `return NotFoundError("no such function");`.
[[nodiscard]] Status InvalidArgumentError(std::string message);
[[nodiscard]] Status NotFoundError(std::string message);
[[nodiscard]] Status AlreadyExistsError(std::string message);
[[nodiscard]] Status FailedPreconditionError(std::string message);
[[nodiscard]] Status OutOfRangeError(std::string message);
[[nodiscard]] Status UnimplementedError(std::string message);
[[nodiscard]] Status InternalError(std::string message);
[[nodiscard]] Status TimeoutError(std::string message);
[[nodiscard]] Status UnavailableError(std::string message);
[[nodiscard]] Status StaleBindingError(std::string message);
[[nodiscard]] Status FunctionDisabledError(std::string message);
[[nodiscard]] Status FunctionMissingError(std::string message);
[[nodiscard]] Status ComponentMissingError(std::string message);
[[nodiscard]] Status DependencyViolationError(std::string message);
[[nodiscard]] Status PermanentViolationError(std::string message);
[[nodiscard]] Status MandatoryViolationError(std::string message);
[[nodiscard]] Status VersionNotInstantiableError(std::string message);
[[nodiscard]] Status VersionFrozenError(std::string message);
[[nodiscard]] Status NotDerivedVersionError(std::string message);
[[nodiscard]] Status ActiveThreadsError(std::string message);
[[nodiscard]] Status ArchMismatchError(std::string message);

// Result<T> holds either a value or a non-OK Status (like absl::StatusOr).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value and from error status, so `return value;` and
  // `return NotFoundError(...)` both work.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      data_ = Status(ErrorCode::kInternal,
                     "Result constructed from OK status without a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  // Precondition: ok().
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> data_;
};

// Propagation helpers: early-return on error.
#define DCDO_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dcdo::Status dcdo_status_tmp_ = (expr);        \
    if (!dcdo_status_tmp_.ok()) return dcdo_status_tmp_; \
  } while (false)

#define DCDO_INTERNAL_CONCAT2(a, b) a##b
#define DCDO_INTERNAL_CONCAT(a, b) DCDO_INTERNAL_CONCAT2(a, b)

#define DCDO_ASSIGN_OR_RETURN(lhs, expr) \
  DCDO_ASSIGN_OR_RETURN_IMPL(DCDO_INTERNAL_CONCAT(dcdo_result_tmp_, __LINE__), \
                             lhs, expr)

#define DCDO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace dcdo
