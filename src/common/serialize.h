// Minimal self-describing serialization for RPC parameters and object state.
//
// Legion marshals method-invocation parameters into wire buffers; we do the
// same with a simple length-prefixed archive. Only the types the system
// actually ships cross-host are supported: integers, doubles, strings, byte
// buffers, and homogeneous sequences of those. Readers consume in the order
// writers produced — a deliberate simplification over a full tag-per-field
// scheme, which the invocation layer does not need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/object_id.h"
#include "common/status.h"
#include "common/version_id.h"

namespace dcdo {

class Writer {
 public:
  Writer() = default;
  // Pre-reserves the output buffer: one allocation up front instead of a
  // doubling cascade while the message is assembled.
  explicit Writer(std::size_t reserve_hint) { buffer_.Reserve(reserve_hint); }
  // Builds into `reuse`, keeping whatever capacity it already grew — pass a
  // buffer from a previous message (or a pool) to serialize allocation-free.
  explicit Writer(ByteBuffer reuse) : buffer_(std::move(reuse)) {
    buffer_.Clear();
  }

  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteDouble(double v);
  void WriteBool(bool v);
  void WriteString(std::string_view v);
  void WriteBytes(const ByteBuffer& v);
  void WriteObjectId(const ObjectId& v);
  void WriteVersionId(const VersionId& v);

  ByteBuffer Take() && { return std::move(buffer_); }
  const ByteBuffer& buffer() const { return buffer_; }

  // Forgets content, keeps capacity: ready to assemble the next message.
  void Reset() { buffer_.Clear(); }

 private:
  ByteBuffer buffer_;
};

class Reader {
 public:
  explicit Reader(const ByteBuffer& buffer) : buffer_(buffer) {}

  [[nodiscard]] Result<std::uint32_t> ReadU32();
  [[nodiscard]] Result<std::uint64_t> ReadU64();
  [[nodiscard]] Result<std::int64_t> ReadI64();
  [[nodiscard]] Result<double> ReadDouble();
  [[nodiscard]] Result<bool> ReadBool();
  [[nodiscard]] Result<std::string> ReadString();
  [[nodiscard]] Result<ByteBuffer> ReadBytes();
  [[nodiscard]] Result<ObjectId> ReadObjectId();
  [[nodiscard]] Result<VersionId> ReadVersionId();

  bool AtEnd() const { return offset_ == buffer_.size(); }
  std::size_t remaining() const { return buffer_.size() - offset_; }

 private:
  template <typename T>
  [[nodiscard]] Result<T> ReadRaw();

  const ByteBuffer& buffer_;
  std::size_t offset_ = 0;
};

}  // namespace dcdo
