#include "common/serialize.h"

namespace dcdo {

void Writer::WriteU32(std::uint32_t v) { buffer_.Append(&v, sizeof(v)); }
void Writer::WriteU64(std::uint64_t v) { buffer_.Append(&v, sizeof(v)); }
void Writer::WriteI64(std::int64_t v) { buffer_.Append(&v, sizeof(v)); }
void Writer::WriteDouble(double v) { buffer_.Append(&v, sizeof(v)); }
void Writer::WriteBool(bool v) {
  std::uint8_t b = v ? 1 : 0;
  buffer_.Append(&b, 1);
}

void Writer::WriteString(std::string_view v) {
  WriteU64(v.size());
  buffer_.Append(v.data(), v.size());
}

void Writer::WriteBytes(const ByteBuffer& v) {
  WriteU64(v.size());
  buffer_.AppendBuffer(v);
}

void Writer::WriteObjectId(const ObjectId& v) {
  WriteU64(v.domain());
  WriteU64(v.instance());
}

void Writer::WriteVersionId(const VersionId& v) {
  WriteU64(v.parts().size());
  for (std::uint32_t part : v.parts()) WriteU32(part);
}

template <typename T>
Result<T> Reader::ReadRaw() {
  T value{};
  if (!buffer_.ReadAt(offset_, &value, sizeof(T))) {
    return OutOfRangeError("archive underflow");
  }
  offset_ += sizeof(T);
  return value;
}

Result<std::uint32_t> Reader::ReadU32() { return ReadRaw<std::uint32_t>(); }
Result<std::uint64_t> Reader::ReadU64() { return ReadRaw<std::uint64_t>(); }
Result<std::int64_t> Reader::ReadI64() { return ReadRaw<std::int64_t>(); }
Result<double> Reader::ReadDouble() { return ReadRaw<double>(); }

Result<bool> Reader::ReadBool() {
  DCDO_ASSIGN_OR_RETURN(std::uint8_t b, ReadRaw<std::uint8_t>());
  return b != 0;
}

Result<std::string> Reader::ReadString() {
  DCDO_ASSIGN_OR_RETURN(std::uint64_t size, ReadU64());
  if (size > remaining()) return OutOfRangeError("string overruns archive");
  std::string out(size, '\0');
  buffer_.ReadAt(offset_, out.data(), size);
  offset_ += size;
  return out;
}

Result<ByteBuffer> Reader::ReadBytes() {
  DCDO_ASSIGN_OR_RETURN(std::uint64_t size, ReadU64());
  if (size > remaining()) return OutOfRangeError("bytes overrun archive");
  std::vector<std::byte> data(size);
  buffer_.ReadAt(offset_, data.data(), size);
  offset_ += size;
  return ByteBuffer(std::move(data));
}

Result<ObjectId> Reader::ReadObjectId() {
  DCDO_ASSIGN_OR_RETURN(std::uint64_t domain, ReadU64());
  DCDO_ASSIGN_OR_RETURN(std::uint64_t instance, ReadU64());
  return ObjectId(domain, instance);
}

Result<VersionId> Reader::ReadVersionId() {
  DCDO_ASSIGN_OR_RETURN(std::uint64_t count, ReadU64());
  if (count > remaining() / sizeof(std::uint32_t)) {
    return OutOfRangeError("version id overruns archive");
  }
  std::vector<std::uint32_t> parts;
  parts.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DCDO_ASSIGN_OR_RETURN(std::uint32_t part, ReadU32());
    parts.push_back(part);
  }
  return VersionId(std::move(parts));
}

}  // namespace dcdo
