// Globally unique object identifiers, modelled on Legion LOIDs.
//
// Legion names every object with a location-independent Legion Object
// IDentifier. We reproduce the essentials: a 64-bit type-domain field plus a
// 64-bit instance field, generated from a deterministic per-process counter so
// simulations are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace dcdo {

class ObjectId {
 public:
  ObjectId() = default;  // nil id
  ObjectId(std::uint64_t domain, std::uint64_t instance)
      : domain_(domain), instance_(instance) {}

  // Draws a fresh id in `domain` from a process-wide deterministic counter.
  static ObjectId Next(std::uint64_t domain);

  // Resets the counter (used by tests/benches for reproducibility).
  static void ResetCounterForTest();

  static ObjectId Nil() { return ObjectId(); }

  bool nil() const { return domain_ == 0 && instance_ == 0; }
  std::uint64_t domain() const { return domain_; }
  std::uint64_t instance() const { return instance_; }

  std::string ToString() const;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;

 private:
  std::uint64_t domain_ = 0;
  std::uint64_t instance_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ObjectId& id);

struct ObjectIdHash {
  std::size_t operator()(const ObjectId& id) const {
    return std::hash<std::uint64_t>()(id.domain() * 0x9e3779b97f4a7c15ull ^
                                      id.instance());
  }
};

// Well-known domains, used so ids are self-describing in logs.
namespace domains {
inline constexpr std::uint64_t kHost = 1;
inline constexpr std::uint64_t kClassObject = 2;
inline constexpr std::uint64_t kInstance = 3;
inline constexpr std::uint64_t kBindingAgent = 4;
inline constexpr std::uint64_t kComponent = 5;
inline constexpr std::uint64_t kDcdoManager = 6;
inline constexpr std::uint64_t kIco = 7;
}  // namespace domains

}  // namespace dcdo
