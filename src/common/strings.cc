#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace dcdo {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    std::size_t next = text.find(delimiter, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(text.substr(pos));
      return out;
    }
    out.emplace_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delimiter) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delimiter;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(size), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string HumanBytes(std::size_t bytes) {
  if (bytes >= 1024ull * 1024 * 1024) {
    return StrFormat("%.1f GB", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  }
  if (bytes >= 1024ull * 1024) {
    return StrFormat("%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024));
  }
  if (bytes >= 1024) {
    return StrFormat("%.1f KB", static_cast<double>(bytes) / 1024.0);
  }
  return StrFormat("%zu B", bytes);
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 1.0) return StrFormat("%.2f s", seconds);
  if (seconds >= 1e-3) return StrFormat("%.2f ms", seconds * 1e3);
  if (seconds >= 1e-6) return StrFormat("%.2f us", seconds * 1e6);
  return StrFormat("%.0f ns", seconds * 1e9);
}

}  // namespace dcdo
