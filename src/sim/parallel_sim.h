// Conservative parallel discrete-event executor over simulation localities.
//
// Window-synchronous LBTS-style protocol (DESIGN.md §14). Each iteration the
// coordinator thread:
//
//   1. drains every locality's cross-thread mailbox (deterministic
//      (when, origin, origin_seq) order),
//   2. fires *global* (control-plane) events serially while the global
//      horizon Tg does not exceed the earliest worker event Tmin — global
//      wins exact-time ties, and the run predicate / deadline is re-checked
//      between every global event, matching the legacy engine's granularity
//      for the control plane,
//   3. releases the worker localities to fire their own events strictly
//      below window_end = min(Tg, Tmin + lookahead[, deadline + 1ns]), then
//      barriers.
//
// The lookahead is the minimum cross-host link latency from CostModel:
// during a window a worker can only influence another worker at least
// `lookahead` in the future (cross-host interaction goes through
// SimNetwork::Send), so firing events below Tmin + lookahead in parallel
// cannot violate causal order. Worker→global messages carry no lookahead
// requirement — the global locality never runs concurrently with workers.
// Execution is therefore deterministic at any worker count: per-locality
// order is exact (time, seq) order, and every cross-locality edge is
// resolved at a barrier by a deterministic sort, never by thread timing.
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/locality.h"
#include "sim/sim_time.h"

namespace dcdo::sim {

// Hard cap on worker localities. Keep in sync with trace::kMetricsLanes
// (lane 0 is the coordinator, lanes 1..16 the workers).
inline constexpr int kMaxSimWorkers = 16;

class ParallelExecutor {
 public:
  struct Options {
    int workers = 2;                // worker localities (hosts: node % workers)
    SimDuration lookahead;          // min cross-host link latency, > 0
    // Worker thread policy. kAuto spawns threads only when the hardware can
    // actually co-run them (hardware_concurrency >= 2, overridable with
    // DCDO_SIM_THREADS=0/1); on a single-CPU host every window would pay
    // two context switches per worker for zero parallelism, so kAuto falls
    // back to running the localities inline on the coordinator thread —
    // bit-identical results (per-locality order and mailbox drain order do
    // not depend on which thread runs a window). kThreads forces the real
    // thread pool (determinism suite, TSan CI); kInline forces the serial
    // fallback.
    enum class ThreadMode { kAuto, kThreads, kInline };
    ThreadMode thread_mode = ThreadMode::kAuto;
  };

  explicit ParallelExecutor(const Options& options);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  // --- Facade entry points (Simulation delegates here when configured) ---
  std::uint64_t ScheduleAt(SimTime when, std::uint32_t affinity, EventFn fn);
  std::uint64_t Schedule(SimDuration delay, std::uint32_t affinity,
                         EventFn fn);
  void Cancel(std::uint64_t event_id);
  SimTime Now() const;
  void AdvanceInline(SimDuration delta);
  std::size_t Run();
  std::size_t RunUntil(SimTime deadline);
  bool RunWhile(const std::function<bool()>& predicate);
  bool Idle() const;
  std::size_t PendingEvents() const;
  std::uint64_t TotalFired() const;
  void SetEventObserver(std::function<void(std::uint64_t)> observer) {
    observer_ = std::move(observer);
  }
  void EnableDigest(bool on);
  std::uint64_t Digest() const;

  int workers() const { return static_cast<int>(workers_.size()); }
  // Mailbox entries that violated the lookahead contract (clamped at drain).
  // The determinism suite asserts this stays zero.
  std::uint64_t late_remote_events() const { return late_remote_events_; }
  // Windows that ran worker events (excludes pure-global iterations).
  std::uint64_t windows_run() const { return windows_run_; }

  // True when the calling thread is a worker locality thread (as opposed to
  // the coordinator). Blocking re-entry into the event loop is only legal
  // from the coordinator.
  bool OnWorkerThread() const;

 private:
  int GlobalIndex() const { return static_cast<int>(workers_.size()); }
  Locality& LocalityAt(int index) {
    return index == GlobalIndex() ? global_ : *workers_[index];
  }
  const Locality& LocalityAt(int index) const {
    return index == GlobalIndex() ? global_ : *workers_[index];
  }
  int TargetIndex(std::uint32_t affinity) const {
    return affinity == kAffinityGlobal
               ? GlobalIndex()
               : static_cast<int>(affinity % workers_.size());
  }
  // The calling thread's locality index within THIS executor; coordinator
  // context (driver thread, or any thread not owned by this executor) maps
  // to the global index.
  int CallerIndex() const;

  std::size_t RunCore(const SimTime* deadline,
                      const std::function<bool()>* predicate, bool* satisfied);
  void RunWorkerWindow(SimTime window_end);
  void DrainAllMailboxes();
  void WorkerMain(int index);
  void NotifyObserver() {
    if (observer_) observer_(TotalFired());
  }

  SimDuration lookahead_;
  std::vector<std::unique_ptr<Locality>> workers_;
  Locality global_;
  // Per-origin-locality sequence for mailbox pushes; each entry is written
  // only by its own locality's thread.
  std::vector<std::uint64_t> remote_push_seq_;
  SimTime last_window_end_;
  std::uint64_t late_remote_events_ = 0;
  std::uint64_t windows_run_ = 0;
  std::function<void(std::uint64_t)> observer_;

  // Worker pool handoff (epoch-based). The hot path is lock-free: the
  // coordinator publishes the window bound, resets running_, then bumps
  // epoch_ (release); workers spin briefly on epoch_ (acquire) before
  // parking on work_cv_, and the coordinator spins briefly on running_
  // before parking on done_cv_. The mutex/cv pair is only the slow path —
  // a parked side is always woken through a lock-then-notify handshake, so
  // no wakeup can be lost. Back-to-back windows (the common case under
  // load) complete the whole barrier without a single futex call.
  std::vector<std::thread> threads_;
  // Spin budget before parking; 0 when the host has fewer spare cores than
  // workers (spinning would steal cycles from the threads doing the work).
  int spin_iterations_ = 0;
  std::mutex pool_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::int64_t> window_end_ns_{0};
  std::atomic<int> running_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace dcdo::sim
