#include "sim/locality.h"

#include <algorithm>
#include <utility>

namespace dcdo::sim {

namespace {
thread_local int tl_locality = -1;
thread_local std::uint32_t tl_affinity = kAffinityGlobal;
}  // namespace

int CurrentThreadLocality() { return tl_locality; }
void SetCurrentThreadLocality(int locality) { tl_locality = locality; }
std::uint32_t CurrentThreadAffinity() { return tl_affinity; }
void SetCurrentThreadAffinity(std::uint32_t affinity) {
  tl_affinity = affinity;
}

std::uint64_t CombineDigests(
    const std::unordered_map<std::uint32_t, std::uint64_t>& per_affinity) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted(
      per_affinity.begin(), per_affinity.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t digest = 1469598103934665603ull;  // FNV offset basis
  for (const auto& [affinity, acc] : sorted) {
    digest = DigestStep(digest, static_cast<std::int64_t>(affinity));
    digest = DigestStep(digest, static_cast<std::int64_t>(acc));
  }
  return digest;
}

std::uint32_t Locality::AllocSlot() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Locality::FreeSlot(std::uint32_t slot) {
  Event& event = slab_[slot];
  event.fn = nullptr;
  ++event.gen;  // invalidates the old id and any stale queue key
  free_slots_.push_back(slot);
  --live_count_;
}

std::uint64_t Locality::ScheduleLocal(SimTime when, std::uint32_t affinity,
                                      EventFn fn) {
  const std::uint32_t slot = AllocSlot();
  Event& event = slab_[slot];
  event.when = when;
  event.seq = next_seq_++;
  event.fn = std::move(fn);
  event.affinity = affinity;
  ++live_count_;
  queue_.push(QueueKey{when, event.seq, slot, event.gen});
  return MakeId(slot, event.gen);
}

void Locality::CancelLocal(std::uint64_t id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32) & 0xffffffu;
  if (slot >= slab_.size()) return;
  Event& event = slab_[slot];
  if ((event.gen & 0xffffffu) != gen || !event.fn) return;
  // The queue key goes stale; PrepareTop purges it by generation mismatch.
  FreeSlot(slot);
}

bool Locality::PrepareTop() {
  while (!queue_.empty() &&
         slab_[queue_.top().slot].gen != queue_.top().gen) {
    queue_.pop();
  }
  return !queue_.empty();
}

bool Locality::PeekNext(SimTime* when) {
  if (!PrepareTop()) return false;
  *when = queue_.top().when;
  return true;
}

bool Locality::FireOne() {
  if (!PrepareTop()) return false;
  const QueueKey key = queue_.top();
  queue_.pop();
  now_ = key.when;
  last_fired_ = key.when;
  const std::uint32_t affinity = slab_[key.slot].affinity;
  // Free the slot before firing: the callback may schedule new events, which
  // can then recycle it (its generation is already bumped).
  EventFn fn = std::move(slab_[key.slot].fn);
  FreeSlot(key.slot);
  SetCurrentThreadAffinity(affinity);
  if (digest_enabled_) {
    std::uint64_t& acc = digest_[affinity];
    acc = DigestStep(acc, key.when.nanos());
  }
  fn();
  events_fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t Locality::RunWindow(SimTime limit) {
  std::size_t fired = 0;
  while (PrepareTop() && queue_.top().when < limit) {
    if (FireOne()) ++fired;
  }
  return fired;
}

void Locality::PushRemote(SimTime when, std::uint32_t origin,
                          std::uint64_t origin_seq, std::uint32_t affinity,
                          EventFn fn) {
  std::lock_guard<std::mutex> lock(mailbox_mu_);
  mailbox_.push_back(Remote{when, origin, origin_seq, affinity,
                            std::move(fn)});
  mailbox_count_.store(mailbox_.size(), std::memory_order_release);
}

std::size_t Locality::DrainMailbox(SimTime floor) {
  // Drains happen at barriers (workers parked) or between global events
  // (workers parked too), so a zero count is exact, not a racy hint: every
  // push that could exist happened-before the barrier that parked its
  // pusher.
  if (mailbox_count_.load(std::memory_order_acquire) == 0) return 0;
  std::vector<Remote> batch;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    batch.swap(mailbox_);
    mailbox_count_.store(0, std::memory_order_release);
  }
  if (batch.empty()) return 0;
  // Arrival order in the vector reflects thread interleaving; the sort key
  // restores the unique deterministic order every worker count produces.
  std::sort(batch.begin(), batch.end(), [](const Remote& a, const Remote& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.origin_seq < b.origin_seq;
  });
  std::size_t late = 0;
  for (Remote& remote : batch) {
    SimTime when = remote.when;
    if (when < floor) {
      // Lookahead violation: the event targets a time this locality may
      // already have passed. Clamping keeps the run causal; the caller
      // counts these so the determinism gate can assert zero.
      when = floor;
      ++late;
    }
    ScheduleLocal(when, remote.affinity, std::move(remote.fn));
  }
  return late;
}

}  // namespace dcdo::sim
