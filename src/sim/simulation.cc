#include "sim/simulation.h"

#include <bit>
#include <utility>

#include "sim/parallel_sim.h"

namespace dcdo::sim {
namespace {

// Slot tick width of wheel level `level`, in nanoseconds (as a shift).
constexpr int LevelShift(int level) {
  return 16 + 6 * level;  // kGranularityBits + kSlotBits * level
}

}  // namespace

/// Out of line: ~unique_ptr<ParallelExecutor> needs the complete type.
Simulation::Simulation() { slab_.emplace_back().gen = 1; }
Simulation::~Simulation() = default;

std::uint32_t Simulation::AllocSlot() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulation::FreeSlot(std::uint32_t slot) {
  Event& event = slab_[slot];
  event.fn = nullptr;
  ++event.gen;  // invalidates the old id and any stale queue key
  event.in_wheel = false;
  free_slots_.push_back(slot);
  --live_count_;
}

std::uint64_t Simulation::Schedule(SimDuration delay, Callback fn) {
  return ScheduleFor(CurrentAffinity(), delay, std::move(fn));
}

std::uint64_t Simulation::ScheduleAt(SimTime when, Callback fn) {
  return ScheduleAtFor(CurrentAffinity(), when, std::move(fn));
}

std::uint64_t Simulation::ScheduleFor(std::uint32_t affinity,
                                      SimDuration delay, Callback fn) {
  if (delay < SimDuration::Zero()) delay = SimDuration::Zero();
  if (executor_) {
    // The executor computes `when` from the calling locality's clock, which
    // is this context's notion of "now".
    return executor_->Schedule(delay, affinity, std::move(fn));
  }
  return ScheduleAtFor(affinity, now_ + delay, std::move(fn));
}

std::uint64_t Simulation::ScheduleAtFor(std::uint32_t affinity, SimTime when,
                                        Callback fn) {
  if (executor_) return executor_->ScheduleAt(when, affinity, std::move(fn));
  if (when < now_) when = now_;
  const std::uint32_t slot = AllocSlot();
  Event& event = slab_[slot];
  event.when = when;
  event.seq = next_seq_++;
  event.fn = std::move(fn);
  event.affinity = affinity;
  ++live_count_;
  // Near-horizon events (due within one level-0 span of the clock) go to the
  // queue directly: they fire before slot boundaries matter, and skipping the
  // wheel avoids the slot insert + flush round trip for events that — unlike
  // long-range timers — are almost never cancelled. Checked here so the
  // dominant case (deliveries) never enters WheelInsert at all.
  constexpr std::int64_t kNearHorizonNs =
      std::int64_t{kSlotsPerLevel} << kGranularityBits;
  if (when.nanos() - now_.nanos() < kNearHorizonNs || !WheelInsert(slot)) {
    queue_.push(QueueKey{when, event.seq, slot, event.gen});
  }
  return MakeId(slot, event.gen);
}

bool Simulation::WheelInsert(std::uint32_t slot) {
  // An empty wheel carries no placement constraints, so pull the cursor up
  // to the clock; otherwise placements made long after the last flush would
  // land in needlessly coarse slots.
  if (wheel_count_ == 0 && now_.nanos() > cursor_ns_) cursor_ns_ = now_.nanos();
  Event& event = slab_[slot];
  const std::int64_t when_ns = event.when.nanos();
  if (when_ns <= cursor_ns_) return false;
  for (int level = 0; level < kWheelLevels; ++level) {
    const int shift = LevelShift(level);
    const std::int64_t when_tick = when_ns >> shift;
    const std::int64_t delta = when_tick - (cursor_ns_ >> shift);
    if (delta <= 0) return false;  // due within the current tick
    if (delta >= kSlotsPerLevel) continue;
    const int wslot = static_cast<int>(when_tick & (kSlotsPerLevel - 1));
    WheelLevel& wl = wheel_[level];
    event.in_wheel = true;
    event.wheel_level = static_cast<std::uint8_t>(level);
    event.wheel_slot = static_cast<std::uint8_t>(wslot);
    event.wheel_index = static_cast<std::uint32_t>(wl.slots[wslot].size());
    wl.slots[wslot].push_back(slot);
    wl.occupied |= std::uint64_t{1} << wslot;
    ++wheel_count_;
    const std::int64_t start_ns = when_tick << shift;
    if (earliest_valid_) {
      if (start_ns < earliest_.start_ns) {
        earliest_ = SlotRef{level, wslot, start_ns};
      }
    } else if (wheel_count_ == 1) {
      // The sole occupied slot is trivially the earliest.
      earliest_ = SlotRef{level, wslot, start_ns};
      earliest_valid_ = true;
    }
    return true;
  }
  return false;  // beyond the wheel span: sparse long-range event
}

std::optional<Simulation::SlotRef> Simulation::EarliestWheelSlot() const {
  if (earliest_valid_) return earliest_;
  std::optional<SlotRef> best;
  for (int level = 0; level < kWheelLevels; ++level) {
    const std::uint64_t occupied = wheel_[level].occupied;
    if (occupied == 0) continue;
    const int shift = LevelShift(level);
    const std::int64_t cursor_tick = cursor_ns_ >> shift;
    // Occupied slots hold ticks in [cursor_tick, cursor_tick + 64). Inserts
    // always land strictly after the cursor, but flushing a finer-level slot
    // whose start is aligned on a coarser boundary advances the cursor onto
    // the coarser slot's own tick — that slot is due now, so the window must
    // include cursor_tick or its tick would read as cursor_tick + 64, one
    // full revolution late. The aliasing is unambiguous: inserts require
    // delta <= 63, so the bit at cursor_tick's position can never mean
    // cursor_tick + 64. Rotate the bitmap so cursor_tick sits at bit 0 and
    // take the lowest set bit.
    const int base = static_cast<int>(cursor_tick & (kSlotsPerLevel - 1));
    const std::uint64_t rotated = std::rotr(occupied, base);
    const std::int64_t tick = cursor_tick + std::countr_zero(rotated);
    const std::int64_t start_ns = tick << shift;
    if (!best || start_ns < best->start_ns) {
      best = SlotRef{level, static_cast<int>(tick & (kSlotsPerLevel - 1)),
                     start_ns};
    }
  }
  if (best) {
    // Memoized-query cache: Simulation is single-threaded by construction
    // (one event loop; see DESIGN.md §3), so the unsynchronized mutable
    // write cannot race.
    earliest_ = *best;            // NOLINT(dcdo-mutable-nonatomic-in-const)
    earliest_valid_ = true;       // NOLINT(dcdo-mutable-nonatomic-in-const)
  }
  return best;
}

void Simulation::FlushWheelSlot(const SlotRef& ref) {
  WheelLevel& wl = wheel_[ref.level];
  wl.occupied &= ~(std::uint64_t{1} << ref.slot);
  earliest_valid_ = false;
  // Monotone advance: when this slot ties an already-flushed finer slot's
  // aligned start (see EarliestWheelSlot), the cursor is already there.
  if (ref.start_ns > cursor_ns_) cursor_ns_ = ref.start_ns;
  std::vector<std::uint32_t>& slots = wl.slots[ref.slot];
  // Re-dispatching never targets this same slot: every event here lies
  // within one level-`ref.level` tick of the new cursor, so it lands at a
  // finer level or in the queue. Iterating in place is therefore safe.
  for (std::uint32_t slot : slots) {
    Event& event = slab_[slot];
    event.in_wheel = false;
    --wheel_count_;
    if (ref.level == 0 || !WheelInsert(slot)) {
      queue_.push(QueueKey{event.when, event.seq, slot, event.gen});
    }
  }
  slots.clear();
}

void Simulation::WheelRemove(Event& event) {
  WheelLevel& wl = wheel_[event.wheel_level];
  std::vector<std::uint32_t>& slots = wl.slots[event.wheel_slot];
  const std::uint32_t index = event.wheel_index;
  if (index + 1 != slots.size()) {
    slots[index] = slots.back();
    slab_[slots[index]].wheel_index = index;
  }
  slots.pop_back();
  if (slots.empty()) {
    wl.occupied &= ~(std::uint64_t{1} << event.wheel_slot);
    // The emptied slot may have been the cached earliest; recompute lazily.
    earliest_valid_ = false;
  }
  --wheel_count_;
}

bool Simulation::PrepareTop() {
  for (;;) {
    // Purge keys whose slot has been freed (cancelled, or recycled since).
    while (!queue_.empty() && slab_[queue_.top().slot].gen != queue_.top().gen) {
      queue_.pop();
    }
    if (wheel_count_ == 0) return !queue_.empty();
    std::optional<SlotRef> slot = EarliestWheelSlot();
    if (queue_.empty() || slot->start_ns <= queue_.top().when.nanos()) {
      // A wheel event could precede (or tie with) the queue head; flush so
      // the queue's (when, seq) order decides.
      FlushWheelSlot(*slot);
      continue;
    }
    return true;
  }
}

bool Simulation::PopAndFire() {
  if (!PrepareTop()) return false;
  const QueueKey key = queue_.top();
  queue_.pop();
  now_ = key.when;
  current_affinity_ = slab_[key.slot].affinity;
  // Free the slot before firing: the callback may schedule new events, which
  // can then recycle it (its generation is already bumped).
  Callback fn = std::move(slab_[key.slot].fn);
  FreeSlot(key.slot);
  if (digest_enabled_) {
    std::uint64_t& acc = digest_[current_affinity_];
    acc = DigestStep(acc, key.when.nanos());
  }
  fn();
  ++events_fired_;
  if (observer_) observer_(events_fired_);
  return true;
}

std::size_t Simulation::Run() {
  if (executor_) return executor_->Run();
  std::size_t fired = 0;
  while (PopAndFire()) ++fired;
  current_affinity_ = kAffinityGlobal;  // back to driver context
  return fired;
}

std::size_t Simulation::RunUntil(SimTime deadline) {
  if (executor_) return executor_->RunUntil(deadline);
  std::size_t fired = 0;
  while (PrepareTop() && queue_.top().when <= deadline) {
    if (PopAndFire()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  current_affinity_ = kAffinityGlobal;
  return fired;
}

bool Simulation::RunWhile(const std::function<bool()>& predicate) {
  if (executor_) return executor_->RunWhile(predicate);
  while (predicate()) {
    if (!PopAndFire()) {
      current_affinity_ = kAffinityGlobal;
      return false;
    }
  }
  current_affinity_ = kAffinityGlobal;
  return true;
}

std::uint32_t Simulation::CurrentAffinity() const {
  return executor_ ? CurrentThreadAffinity() : current_affinity_;
}

void Simulation::SetEventObserver(EventObserver observer) {
  observer_ = std::move(observer);
  if (executor_) executor_->SetEventObserver(observer_);
}

Status Simulation::ConfigureParallel(int workers, SimDuration lookahead) {
  if (executor_ != nullptr) {
    return InvalidArgumentError("parallel executor already configured");
  }
  if (workers < 1 || workers > kMaxSimWorkers) {
    return InvalidArgumentError("sim workers must be in [1, 16]");
  }
  if (lookahead <= SimDuration::Zero()) {
    return InvalidArgumentError(
        "parallel lookahead (min link latency) must be positive");
  }
  if (live_count_ != 0 || events_fired_ != 0 || next_seq_ != 0 ||
      now_ != SimTime::Zero()) {
    return InvalidArgumentError(
        "ConfigureParallel requires a fresh simulation");
  }
  ParallelExecutor::Options options;
  options.workers = workers;
  options.lookahead = lookahead;
  executor_ = std::make_unique<ParallelExecutor>(options);
  executor_->EnableDigest(digest_enabled_);
  if (observer_) executor_->SetEventObserver(observer_);
  return Status::Ok();
}

void Simulation::EnableDeterminismDigest(bool on) {
  digest_enabled_ = on;
  if (executor_) executor_->EnableDigest(on);
}

std::uint64_t Simulation::DeterminismDigest() const {
  if (executor_) return executor_->Digest();
  return CombineDigests(digest_);
}

SimTime Simulation::ExecutorNow() const { return executor_->Now(); }
void Simulation::ExecutorAdvance(SimDuration delta) {
  executor_->AdvanceInline(delta);
}
bool Simulation::ExecutorIdle() const { return executor_->Idle(); }
std::size_t Simulation::ExecutorPending() const {
  return executor_->PendingEvents();
}
std::uint64_t Simulation::ExecutorFired() const {
  return executor_->TotalFired();
}

void Simulation::Cancel(std::uint64_t event_id) {
  if (executor_) {
    executor_->Cancel(event_id);
    return;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(event_id);
  const std::uint32_t gen = static_cast<std::uint32_t>(event_id >> 32);
  if (slot >= slab_.size()) return;
  Event& event = slab_[slot];
  if (event.gen != gen) return;  // already fired or cancelled
  if (event.in_wheel) {
    WheelRemove(event);
  }
  // Queue-resident events leave a stale key in the heap; PrepareTop() purges
  // it by generation mismatch when it surfaces.
  FreeSlot(slot);
}

}  // namespace dcdo::sim
