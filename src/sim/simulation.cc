#include "sim/simulation.h"

#include <utility>

namespace dcdo::sim {

std::uint64_t Simulation::Schedule(SimDuration delay, Callback fn) {
  if (delay < SimDuration::Zero()) delay = SimDuration::Zero();
  return ScheduleAt(now_ + delay, std::move(fn));
}

std::uint64_t Simulation::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulation::Cancel(std::uint64_t event_id) {
  cancelled_.insert(event_id);
}

bool Simulation::PopAndFire() {
  while (!queue_.empty()) {
    // Move the event out of the queue instead of copying it: the callback is
    // a std::function whose copy may allocate, and this is the engine's
    // innermost loop. Mutating top() is safe because pop() follows
    // immediately, before the heap looks at the element again.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (!cancelled_.empty() && cancelled_.erase(event.id) > 0) continue;
    now_ = event.when;
    event.fn();
    ++events_fired_;
    if (observer_) observer_(events_fired_);
    return true;
  }
  return false;
}

std::size_t Simulation::Run() {
  std::size_t fired = 0;
  while (PopAndFire()) ++fired;
  return fired;
}

std::size_t Simulation::RunUntil(SimTime deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (PopAndFire()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

bool Simulation::RunWhile(const std::function<bool()>& pending) {
  while (pending()) {
    if (!PopAndFire()) return false;
  }
  return true;
}

}  // namespace dcdo::sim
