#include "sim/parallel_sim.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "sim/parallel_gate.h"
#include "trace/metrics.h"

namespace dcdo::sim {

namespace {
// Which executor (if any) owns the calling thread. Distinguishes this
// executor's worker threads from the coordinator/driver thread, and guards
// against a stale thread-local locality index left behind by a previous
// simulation in the same process.
thread_local ParallelExecutor* tl_owner = nullptr;

// Bounded spin before parking at the window barrier. A futex round trip
// costs tens of microseconds of wakeup latency per window — more than many
// whole windows of useful work — so both sides of the barrier burn a short
// spin first and only fall back to the condition variable when the other
// side is genuinely idle. Only worth it when cores outnumber workers; see
// ResolveSpinIterations.
constexpr int kBarrierSpinIterations = 1 << 12;

// Whether to spawn real worker threads. On a host that cannot co-run the
// pool (single CPU, or an explicit DCDO_SIM_THREADS=0) windows run inline
// on the coordinator instead — same results, no barrier cost.
bool ResolveUseThreads(ParallelExecutor::Options::ThreadMode mode) {
  using ThreadMode = ParallelExecutor::Options::ThreadMode;
  if (mode == ThreadMode::kThreads) return true;
  if (mode == ThreadMode::kInline) return false;
  if (const char* env = std::getenv("DCDO_SIM_THREADS");
      env != nullptr && (env[0] == '0' || env[0] == '1')) {
    return env[0] == '1';
  }
  return std::thread::hardware_concurrency() >= 2;
}

int ResolveSpinIterations(int workers) {
  // The coordinator parks while workers run (and vice versa), so the pool
  // needs `workers` cores busy at once; spin only when the host has at
  // least that many plus one to absorb scheduling jitter.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > static_cast<unsigned>(workers) ? kBarrierSpinIterations : 0;
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}
}  // namespace

ParallelExecutor::ParallelExecutor(const Options& options)
    : lookahead_(options.lookahead),
      global_(static_cast<std::uint32_t>(options.workers)) {
  workers_.reserve(static_cast<std::size_t>(options.workers));
  for (int i = 0; i < options.workers; ++i) {
    workers_.push_back(std::make_unique<Locality>(i));
  }
  remote_push_seq_.assign(static_cast<std::size_t>(options.workers) + 1, 0);
  SetParallelExecutionActive(true);
  // The constructing thread is the coordinator: it drives Run*/global events
  // and owns every locality while the workers are parked.
  tl_owner = this;
  SetCurrentThreadLocality(GlobalIndex());
  SetCurrentThreadAffinity(kAffinityGlobal);
  if (ResolveUseThreads(options.thread_mode)) {
    spin_iterations_ = ResolveSpinIterations(options.workers);
    threads_.reserve(static_cast<std::size_t>(options.workers));
    for (int i = 0; i < options.workers; ++i) {
      threads_.emplace_back([this, i] { WorkerMain(i); });
    }
  }
}

ParallelExecutor::~ParallelExecutor() {
  shutdown_.store(true, std::memory_order_release);
  // Empty critical section: a worker past its predicate check is inside
  // wait() and will see the notify; one before it will see shutdown_.
  { std::lock_guard<std::mutex> lock(pool_mu_); }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  SetParallelExecutionActive(false);
  if (tl_owner == this) tl_owner = nullptr;
}

int ParallelExecutor::CallerIndex() const {
  if (tl_owner != this) return GlobalIndex();
  const int locality = CurrentThreadLocality();
  return locality < 0 ? GlobalIndex() : locality;
}

bool ParallelExecutor::OnWorkerThread() const {
  return tl_owner == this && CurrentThreadLocality() != GlobalIndex();
}

std::uint64_t ParallelExecutor::ScheduleAt(SimTime when, std::uint32_t affinity,
                                           EventFn fn) {
  const int target = TargetIndex(affinity);
  const int caller = CallerIndex();
  // Clamp against the SCHEDULING context's clock — the exact legacy rule
  // (Simulation::ScheduleAtFor clamps against its one shared clock, which is
  // always the firing context's). The target's clock must NOT be consulted:
  // it may sit inline-advanced (AdvanceInline models per-call costs that can
  // exceed the lookahead) past an arrival that legacy fires in plain
  // timestamp order.
  const SimTime caller_now = LocalityAt(caller).now();
  if (when < caller_now) when = caller_now;
  if (caller == target || caller == GlobalIndex()) {
    // Same locality, or coordinator context (every worker is parked at a
    // barrier): direct insert is race-free.
    return LocalityAt(target).ScheduleLocal(when, affinity, std::move(fn));
  }
  // Cross-locality from a worker: mailbox, resolved at the next barrier. The
  // event has no slot yet, so the id is the "no event" sentinel 0 — code
  // needing a cancellable timer arms it at its own affinity (the repo-wide
  // convention; rpc timers already work this way).
  LocalityAt(target).PushRemote(when, static_cast<std::uint32_t>(caller),
                                remote_push_seq_[static_cast<std::size_t>(
                                    caller)]++,
                                affinity, std::move(fn));
  return 0;
}

std::uint64_t ParallelExecutor::Schedule(SimDuration delay,
                                         std::uint32_t affinity, EventFn fn) {
  const SimTime now = LocalityAt(CallerIndex()).now();
  return ScheduleAt(now + delay, affinity, std::move(fn));
}

void ParallelExecutor::Cancel(std::uint64_t event_id) {
  if (event_id == 0) return;
  const int locality = static_cast<int>(event_id >> 56) - 1;
  if (locality < 0 || locality > GlobalIndex()) return;
  const int caller = CallerIndex();
  if (caller != locality && caller != GlobalIndex()) {
    // A worker reaching into another locality's queue would race with its
    // owner. No legitimate call site does this (timers are armed and
    // cancelled at one affinity); fail loudly rather than corrupt the run.
    DCDO_LOG(kError) << "cross-locality Cancel from locality " << caller
                     << " into locality " << locality
                     << "; timers must be armed and cancelled at one affinity";
    std::abort();
  }
  LocalityAt(locality).CancelLocal(event_id);
}

SimTime ParallelExecutor::Now() const {
  return LocalityAt(CallerIndex()).now();
}

void ParallelExecutor::AdvanceInline(SimDuration delta) {
  LocalityAt(CallerIndex()).AdvanceInline(delta);
}

void ParallelExecutor::DrainAllMailboxes() {
  // Worker floor: everything below the last window bound already had its
  // chance to fire, so an arrival below it is a lookahead violation. The
  // global locality runs one event at a time, so the timestamp of its last
  // fired event is the exact floor (worker→global messages carry no
  // lookahead requirement). last_fired(), not now(): inline advances inflate
  // now() past the fired timestamp by more than the lookahead (marshal and
  // dispatch costs both exceed network_latency), and an arrival in that gap
  // is perfectly causal — legacy fires it right after the inflating event.
  for (auto& worker : workers_) {
    late_remote_events_ += worker->DrainMailbox(last_window_end_);
  }
  late_remote_events_ += global_.DrainMailbox(global_.last_fired());
}

void ParallelExecutor::WorkerMain(int index) {
  tl_owner = this;
  SetCurrentThreadLocality(index);
  trace::SetMetricsLane(static_cast<std::size_t>(index) + 1);
  std::uint64_t seen = 0;
  for (;;) {
    // Fast path: under load the coordinator opens windows back to back, so
    // the next epoch usually lands while we spin and the handoff never
    // leaves user space.
    bool ready = false;
    for (int spin = 0; spin < spin_iterations_; ++spin) {
      if (shutdown_.load(std::memory_order_acquire) ||
          epoch_.load(std::memory_order_acquire) != seen) {
        ready = true;
        break;
      }
      CpuRelax();
    }
    if (!ready) {
      std::unique_lock<std::mutex> lock(pool_mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_acquire) != seen;
      });
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    // The acquire on epoch_ pairs with the coordinator's release bump, so
    // the window bound (and every event inserted before the window opened)
    // is visible here.
    const SimTime end =
        SimTime::FromNanos(window_end_ns_.load(std::memory_order_relaxed));
    workers_[static_cast<std::size_t>(index)]->RunWindow(end);
    if (running_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out. The coordinator may already be parked on done_cv_;
      // the empty critical section pairs with its predicate check so the
      // notify cannot slip between check and wait.
      { std::lock_guard<std::mutex> lock(pool_mu_); }
      done_cv_.notify_one();
    }
  }
}

void ParallelExecutor::RunWorkerWindow(SimTime window_end) {
  ++windows_run_;
  int participants = 0;
  int only = -1;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    SimTime t;
    if (workers_[i]->PeekNext(&t) && t < window_end) {
      ++participants;
      only = static_cast<int>(i);
    }
  }
  if (participants == 0) return;
  if (participants == 1 || threads_.empty()) {
    // Run the window(s) on the coordinator thread. Two cases land here: a
    // single participating locality (sparse stretches — driver warm-up,
    // control-plane-heavy phases — hit this constantly, and the wakeup
    // round trip would dwarf the work), and the no-thread-pool fallback on
    // hosts that cannot co-run workers. Index order keeps the late-event
    // audit deterministic; results are identical either way because
    // localities never touch each other inside a window.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (participants == 1 && static_cast<int>(i) != only) continue;
      SimTime t;
      if (participants != 1 && !(workers_[i]->PeekNext(&t) && t < window_end))
        continue;
      SetCurrentThreadLocality(static_cast<int>(i));
      workers_[i]->RunWindow(window_end);
    }
    SetCurrentThreadLocality(GlobalIndex());
    SetCurrentThreadAffinity(kAffinityGlobal);
    return;
  }
  window_end_ns_.store(window_end.nanos(), std::memory_order_relaxed);
  running_.store(static_cast<int>(threads_.size()), std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  // Spinning workers see the epoch bump directly; a parked worker is woken
  // through the lock-then-notify handshake (see WorkerMain).
  { std::lock_guard<std::mutex> lock(pool_mu_); }
  work_cv_.notify_all();
  for (int spin = 0; spin < spin_iterations_; ++spin) {
    if (running_.load(std::memory_order_acquire) == 0) return;
    CpuRelax();
  }
  std::unique_lock<std::mutex> lock(pool_mu_);
  done_cv_.wait(lock, [this] {
    return running_.load(std::memory_order_acquire) == 0;
  });
}

std::size_t ParallelExecutor::RunCore(const SimTime* deadline,
                                      const std::function<bool()>* predicate,
                                      bool* satisfied) {
  const std::uint64_t start_fired = TotalFired();
  for (;;) {
    if (predicate != nullptr && !(*predicate)()) {
      if (satisfied != nullptr) *satisfied = true;
      break;
    }
    DrainAllMailboxes();
    SimTime tg{};
    const bool has_global = global_.PeekNext(&tg);
    SimTime tmin{};
    bool has_worker = false;
    for (auto& worker : workers_) {
      SimTime t;
      if (worker->PeekNext(&t)) {
        if (!has_worker || t < tmin) tmin = t;
        has_worker = true;
      }
    }
    // Control plane first: fire global events while none of them trails the
    // earliest worker event. Ties go to the global locality — at an exact
    // tie the control plane acts before the data plane.
    if (has_global && (!has_worker || tg <= tmin) &&
        (deadline == nullptr || tg <= *deadline)) {
      SetCurrentThreadLocality(GlobalIndex());
      global_.FireOne();
      NotifyObserver();
      continue;  // horizons, mailboxes, and the predicate all need re-checks
    }
    if (!has_worker) break;
    if (deadline != nullptr && tmin > *deadline) break;
    SimTime window_end = tmin + lookahead_;
    if (has_global && tg < window_end) window_end = tg;
    if (deadline != nullptr) {
      // RunUntil fires events AT the deadline (legacy semantics); windows
      // fire strictly below their bound, so cap one nanosecond past it.
      const SimTime cap = *deadline + SimDuration::Nanos(1);
      if (cap < window_end) window_end = cap;
    }
    RunWorkerWindow(window_end);
    last_window_end_ = window_end;
    NotifyObserver();
  }
  SetCurrentThreadLocality(GlobalIndex());
  SetCurrentThreadAffinity(kAffinityGlobal);
  return static_cast<std::size_t>(TotalFired() - start_fired);
}

std::size_t ParallelExecutor::Run() {
  const std::size_t fired = RunCore(nullptr, nullptr, nullptr);
  // Legacy parity: after a full drain the clock stands at the final event's
  // timestamp. Unify every locality on the maximum so a driver that keeps
  // scheduling sees one consistent "end of run" instant.
  SimTime max_now = global_.now();
  for (auto& worker : workers_) max_now = std::max(max_now, worker->now());
  global_.set_now(max_now);
  for (auto& worker : workers_) worker->set_now(max_now);
  return fired;
}

std::size_t ParallelExecutor::RunUntil(SimTime deadline) {
  const std::size_t fired = RunCore(&deadline, nullptr, nullptr);
  if (global_.now() < deadline) global_.set_now(deadline);
  for (auto& worker : workers_) {
    if (worker->now() < deadline) worker->set_now(deadline);
  }
  return fired;
}

bool ParallelExecutor::RunWhile(const std::function<bool()>& predicate) {
  bool satisfied = false;
  RunCore(nullptr, &predicate, &satisfied);
  return satisfied;
}

bool ParallelExecutor::Idle() const { return PendingEvents() == 0; }

std::size_t ParallelExecutor::PendingEvents() const {
  std::size_t pending = global_.live_count() + global_.MailboxSize();
  for (const auto& worker : workers_) {
    pending += worker->live_count() + worker->MailboxSize();
  }
  return pending;
}

std::uint64_t ParallelExecutor::TotalFired() const {
  std::uint64_t fired = global_.events_fired();
  for (const auto& worker : workers_) fired += worker->events_fired();
  return fired;
}

void ParallelExecutor::EnableDigest(bool on) {
  global_.EnableDigest(on);
  for (auto& worker : workers_) worker->EnableDigest(on);
}

std::uint64_t ParallelExecutor::Digest() const {
  // Affinity sets are disjoint by construction — node events live on
  // node % W, global events on the global locality — so a plain merge loses
  // nothing and the combine is worker-count-invariant.
  std::unordered_map<std::uint32_t, std::uint64_t> merged = global_.digest();
  for (const auto& worker : workers_) {
    for (const auto& [affinity, acc] : worker->digest()) {
      merged[affinity] = acc;
    }
  }
  return CombineDigests(merged);
}

}  // namespace dcdo::sim
