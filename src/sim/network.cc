#include "sim/network.h"

#include <algorithm>

#include "common/logging.h"

namespace dcdo::sim {
namespace {
std::pair<NodeId, NodeId> Normalize(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

void SimNetwork::AddNode(NodeId node) { nodes_.insert(node); }

void SimNetwork::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

bool SimNetwork::NodeUp(NodeId node) const {
  return nodes_.contains(node) && !down_.contains(node);
}

void SimNetwork::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  if (partitioned) {
    partitions_.insert(Normalize(a, b));
  } else {
    partitions_.erase(Normalize(a, b));
  }
}

bool SimNetwork::Reachable(NodeId from, NodeId to) const {
  if (!NodeUp(from) || !NodeUp(to)) return false;
  if (from != to && partitions_.contains(Normalize(from, to))) return false;
  return true;
}

void SimNetwork::Send(NodeId from, NodeId to, std::size_t bytes,
                      Delivery on_delivery) {
  if (!Reachable(from, to)) {
    ++messages_dropped_;
    DCDO_LOG(kDebug) << "net: dropped " << bytes << "B " << from << "->" << to;
    return;
  }
  ++messages_sent_;
  ++messages_in_flight_;
  bytes_sent_ += bytes;
  if (from == to) {
    // Loopback: no NIC serialization, negligible latency.
    simulation_.Schedule(SimDuration::Micros(5),
                         [this, fn = std::move(on_delivery)]() {
                           --messages_in_flight_;
                           ++messages_delivered_;
                           fn();
                         });
    return;
  }
  // NIC serialization: back-to-back sends from one node queue behind each
  // other at wire speed.
  SimTime now = simulation_.Now();
  SimTime& busy_until = nic_busy_until_[from];
  SimTime start = std::max(now, busy_until);
  SimDuration wire = SimDuration::Seconds(
      static_cast<double>(bytes) / cost_.wire_bandwidth_bytes_per_sec);
  busy_until = start + wire;
  SimTime delivered = busy_until + cost_.network_latency;
  // Re-check reachability at delivery time: a partition that forms while the
  // message is in flight loses the message.
  simulation_.ScheduleAt(
      delivered, [this, from, to, fn = std::move(on_delivery)]() {
        --messages_in_flight_;
        if (!Reachable(from, to)) {
          ++messages_dropped_;
          ++messages_dropped_in_flight_;
          return;
        }
        ++messages_delivered_;
        fn();
      });
}

void SimNetwork::BulkTransfer(NodeId from, NodeId to, std::size_t bytes,
                              Delivery on_done) {
  SimDuration total = (from == to) ? cost_.DiskRead(bytes)  // local copy
                                   : cost_.DownloadTime(bytes);
  TimedTransfer(from, to, bytes, total, std::move(on_done));
}

void SimNetwork::TimedTransfer(NodeId from, NodeId to, std::size_t bytes,
                               SimDuration duration, Delivery on_done) {
  if (!Reachable(from, to)) {
    ++messages_dropped_;
    return;
  }
  bytes_sent_ += bytes;
  simulation_.Schedule(duration,
                       [this, from, to, fn = std::move(on_done)]() {
                         if (!Reachable(from, to)) {
                           ++messages_dropped_;
                           return;
                         }
                         fn();
                       });
}

}  // namespace dcdo::sim
