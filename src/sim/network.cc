#include "sim/network.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "trace/trace_context.h"

namespace dcdo::sim {
namespace {
std::pair<NodeId, NodeId> Normalize(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

// A net.xfer / net.batch / net.bulk span covering wire time. Opened at send
// (so it nests under the transport's rpc.send scope), closed at delivery.
// Returns 0 with tracing off — every downstream use tolerates a zero id.
std::uint64_t BeginTransferSpan(const char* name, NodeId from,
                                std::size_t bytes) {
  auto* tr = trace::ActiveContext();
  if (tr == nullptr) return 0;
  std::uint64_t span =
      tr->BeginSpan(name, {.category = "net", .node = from});
  tr->Annotate(span, "bytes", std::to_string(bytes));
  return span;
}

void EndTransferSpan(std::uint64_t span, bool delivered) {
  if (span == 0) return;
  auto* tr = trace::ActiveContext();
  if (tr == nullptr) return;
  if (delivered) {
    tr->EndSpan(span);
  } else {
    tr->EndSpan(span, "outcome", "dropped-in-flight");
    tr->metrics().GetCounter("net.drops").Increment();
  }
}

void TraceSendDrop(NodeId from, NodeId to) {
  auto* tr = trace::ActiveContext();
  if (tr == nullptr) return;
  tr->Instant("net.drop", {.category = "net", .node = from});
  tr->metrics().GetCounter("net.drops").Increment();
  (void)to;
}
}  // namespace

void SimNetwork::AddNode(NodeId node) { nodes_.insert(node); }

void SimNetwork::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

bool SimNetwork::NodeUp(NodeId node) const {
  return nodes_.contains(node) && !down_.contains(node);
}

void SimNetwork::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  if (partitioned) {
    partitions_.insert(Normalize(a, b));
  } else {
    partitions_.erase(Normalize(a, b));
  }
}

bool SimNetwork::Reachable(NodeId from, NodeId to) const {
  if (from == to) return NodeUp(from);  // no link to partition
  if (!NodeUp(from) || !NodeUp(to)) return false;
  return !partitions_.contains(Normalize(from, to));
}

void SimNetwork::Send(NodeId from, NodeId to, std::size_t bytes,
                      Delivery on_delivery) {
  if (!Reachable(from, to)) {
    messages_dropped_.Increment();
    TraceSendDrop(from, to);
    DCDO_LOG(kDebug) << "net: dropped " << bytes << "B " << from << "->" << to;
    return;
  }
  messages_sent_.Increment();
  messages_in_flight_.Increment();
  bytes_sent_.Increment(bytes);
  if (cost_.send_batch_window > SimDuration::Zero()) {
    const auto key = std::make_pair(from, to);
    auto [it, opened] = pending_batches_.try_emplace(key);
    PendingBatch& batch = it->second;
    if (opened) {
      batch.id = next_batch_id_++;
      simulation_.Schedule(cost_.send_batch_window,
                           [this, from, to, batch_id = batch.id]() {
                             FlushBatch(from, to, batch_id);
                           });
    } else {
      messages_coalesced_.Increment();
    }
    batch.bytes += bytes;
    batch.deliveries.push_back(std::move(on_delivery));
    if (batch.bytes >= cost_.send_batch_max_bytes) {
      FlushBatch(from, to, batch.id);  // the armed window flush will no-op
    }
    return;
  }
  std::uint64_t span = BeginTransferSpan("net.xfer", from, bytes);
  if (from == to) {
    // Loopback: no NIC serialization, negligible latency.
    simulation_.Schedule(SimDuration::Micros(5),
                         [this, span, fn = std::move(on_delivery)]() mutable {
                           messages_in_flight_.Decrement();
                           messages_delivered_.Increment();
                           EndTransferSpan(span, /*delivered=*/true);
                           fn();
                         });
    return;
  }
  // NIC serialization: back-to-back sends from one node queue behind each
  // other at wire speed.
  SimTime now = simulation_.Now();
  SimTime& busy_until = nic_busy_until_[from];
  SimTime start = std::max(now, busy_until);
  SimDuration wire = SimDuration::Seconds(
      static_cast<double>(bytes) / cost_.wire_bandwidth_bytes_per_sec);
  busy_until = start + wire;
  SimTime delivered = busy_until + cost_.network_latency;
  // Re-check reachability at delivery time: a partition that forms while the
  // message is in flight loses the message.
  simulation_.ScheduleAt(
      delivered,
      [this, from, to, span, fn = std::move(on_delivery)]() mutable {
        messages_in_flight_.Decrement();
        if (!Reachable(from, to)) {
          messages_dropped_.Increment();
          messages_dropped_in_flight_.Increment();
          EndTransferSpan(span, /*delivered=*/false);
          return;
        }
        messages_delivered_.Increment();
        EndTransferSpan(span, /*delivered=*/true);
        fn();
      });
}

void SimNetwork::FlushBatch(NodeId from, NodeId to, std::uint64_t batch_id) {
  auto it = pending_batches_.find(std::make_pair(from, to));
  // A byte-cap flush may have shipped this batch already (and a successor
  // may have opened since); the stale window event must not touch it.
  if (it == pending_batches_.end() || it->second.id != batch_id) return;
  PendingBatch batch = std::move(it->second);
  pending_batches_.erase(it);
  DispatchBatch(from, to, batch.bytes, std::move(batch.deliveries));
}

void SimNetwork::DispatchBatch(NodeId from, NodeId to, std::size_t bytes,
                               std::vector<Delivery> deliveries) {
  batches_sent_.Increment();
  std::uint64_t span = BeginTransferSpan("net.batch", from, bytes);
  auto deliver = [this, from, to, span,
                  fns = std::move(deliveries)]() mutable {
    messages_in_flight_.Decrement(fns.size());
    if (!Reachable(from, to)) {
      messages_dropped_.Increment(fns.size());
      messages_dropped_in_flight_.Increment(fns.size());
      EndTransferSpan(span, /*delivered=*/false);
      return;
    }
    messages_delivered_.Increment(fns.size());
    EndTransferSpan(span, /*delivered=*/true);
    for (Delivery& fn : fns) fn();
  };
  if (from == to) {
    simulation_.Schedule(SimDuration::Micros(5), std::move(deliver));
    return;
  }
  SimTime now = simulation_.Now();
  SimTime& busy_until = nic_busy_until_[from];
  SimTime start = std::max(now, busy_until);
  SimDuration wire = SimDuration::Seconds(
      static_cast<double>(bytes) / cost_.wire_bandwidth_bytes_per_sec);
  busy_until = start + wire;
  simulation_.ScheduleAt(busy_until + cost_.network_latency,
                         std::move(deliver));
}

void SimNetwork::BulkTransfer(NodeId from, NodeId to, std::size_t bytes,
                              Delivery on_done) {
  SimDuration total = (from == to) ? cost_.DiskRead(bytes)  // local copy
                                   : cost_.DownloadTime(bytes);
  TimedTransfer(from, to, bytes, total, std::move(on_done));
}

void SimNetwork::TimedTransfer(NodeId from, NodeId to, std::size_t bytes,
                               SimDuration duration, Delivery on_done) {
  if (!Reachable(from, to)) {
    messages_dropped_.Increment();
    TraceSendDrop(from, to);
    return;
  }
  // Same accounting as Send(): bulk transfers are messages too, and the
  // message-conservation invariant (sent == delivered + dropped-in-flight +
  // in-flight) must hold across both traffic classes.
  messages_sent_.Increment();
  messages_in_flight_.Increment();
  bytes_sent_.Increment(bytes);
  std::uint64_t span = BeginTransferSpan("net.bulk", from, bytes);
  simulation_.Schedule(
      duration, [this, from, to, span, fn = std::move(on_done)]() mutable {
        messages_in_flight_.Decrement();
        if (!Reachable(from, to)) {
          messages_dropped_.Increment();
          messages_dropped_in_flight_.Increment();
          EndTransferSpan(span, /*delivered=*/false);
          return;
        }
        messages_delivered_.Increment();
        EndTransferSpan(span, /*delivered=*/true);
        fn();
      });
}

}  // namespace dcdo::sim
