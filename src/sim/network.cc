#include "sim/network.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "trace/trace_context.h"

namespace dcdo::sim {
namespace {
std::pair<NodeId, NodeId> Normalize(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

// A net.xfer / net.batch / net.bulk span covering wire time. Opened at send
// (so it nests under the transport's rpc.send scope), closed at delivery.
// Returns 0 with tracing off — every downstream use tolerates a zero id.
std::uint64_t BeginTransferSpan(const char* name, NodeId from,
                                std::size_t bytes) {
  auto* tr = trace::ActiveContext();
  if (tr == nullptr) return 0;
  std::uint64_t span =
      tr->BeginSpan(name, {.category = "net", .node = from});
  tr->Annotate(span, "bytes", std::to_string(bytes));
  return span;
}

void EndTransferSpan(std::uint64_t span, bool delivered) {
  if (span == 0) return;
  auto* tr = trace::ActiveContext();
  if (tr == nullptr) return;
  if (delivered) {
    tr->EndSpan(span);
  } else {
    tr->EndSpan(span, "outcome", "dropped-in-flight");
    tr->metrics().GetCounter("net.drops").Increment();
  }
}

void TraceSendDrop(NodeId from, NodeId to) {
  auto* tr = trace::ActiveContext();
  if (tr == nullptr) return;
  tr->Instant("net.drop", {.category = "net", .node = from});
  tr->metrics().GetCounter("net.drops").Increment();
  (void)to;
}
}  // namespace

void SimNetwork::AddNode(NodeId node) {
  nodes_.insert(node);
  // Pre-insert the NIC and batch entries so parallel sends never mutate the
  // maps' structure: Send from worker threads only touches its own node's
  // value (distinct keys, no rehash), which is race-free without a lock.
  nic_busy_until_.try_emplace(node);
  pending_batches_.try_emplace(node);
}

void SimNetwork::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

bool SimNetwork::NodeUp(NodeId node) const {
  return nodes_.contains(node) && !down_.contains(node);
}

void SimNetwork::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  if (partitioned) {
    partitions_.insert(Normalize(a, b));
  } else {
    partitions_.erase(Normalize(a, b));
  }
}

bool SimNetwork::Reachable(NodeId from, NodeId to) const {
  if (from == to) return NodeUp(from);  // no link to partition
  if (!NodeUp(from) || !NodeUp(to)) return false;
  return !partitions_.contains(Normalize(from, to));
}

void SimNetwork::Send(NodeId from, NodeId to, std::size_t bytes,
                      Delivery on_delivery, std::uint32_t delivery_affinity,
                      SendClass send_class) {
  if (!Reachable(from, to)) {
    messages_dropped_.Increment();
    TraceSendDrop(from, to);
    DCDO_LOG(kDebug) << "net: dropped " << bytes << "B " << from << "->" << to;
    return;
  }
  messages_sent_.Increment();
  messages_in_flight_.Increment();
  bytes_sent_.Increment(bytes);
  if (cost_.send_batch_window > SimDuration::Zero()) {
    SenderBatches& sender = pending_batches_[from];
    auto [it, opened] = sender.by_dest.try_emplace(to);
    PendingBatch& batch = it->second;
    if (opened) {
      batch.id = sender.next_batch_id++;
      // The flush event carries the sender's affinity: it reads and ships
      // this node's batch/NIC state, which only the owning locality (or the
      // coordinator, never concurrently) may touch.
      simulation_.ScheduleFor(from, cost_.send_batch_window,
                              [this, from, to, batch_id = batch.id]() {
                                FlushBatch(from, to, batch_id);
                              });
    } else {
      messages_coalesced_.Increment();
    }
    batch.bytes += bytes;
    batch.deliveries.push_back({std::move(on_delivery), delivery_affinity});
    // Formation policy: urgent traffic ships now (the whole pending batch
    // rides with it); coalesce-class traffic defers even the byte cap to the
    // window deadline so bulk-adjacent chatter forms the largest batches.
    const bool urgent =
        cost_.formation_policy && send_class == SendClass::kUrgent;
    const bool defer_cap =
        cost_.formation_policy && send_class == SendClass::kCoalesce;
    if (urgent || (!defer_cap && batch.bytes >= cost_.send_batch_max_bytes)) {
      FlushBatch(from, to, batch.id);  // the armed window flush will no-op
    }
    return;
  }
  std::uint64_t span = BeginTransferSpan("net.xfer", from, bytes);
  if (from == to) {
    // Loopback: no NIC serialization, negligible latency. The sub-lookahead
    // delay is safe under the parallel executor: the delivery lands on the
    // sender's own locality (same node) or on the global locality (reply
    // continuations), and neither edge needs lookahead.
    simulation_.ScheduleFor(delivery_affinity, SimDuration::Micros(5),
                            [this, span, fn = std::move(on_delivery)]() mutable {
                              messages_in_flight_.Decrement();
                              messages_delivered_.Increment();
                              EndTransferSpan(span, /*delivered=*/true);
                              fn();
                            });
    return;
  }
  // NIC serialization: back-to-back sends from one node queue behind each
  // other at wire speed.
  SimTime now = simulation_.Now();
  SimTime& busy_until = nic_busy_until_[from];
  SimTime start = std::max(now, busy_until);
  SimDuration wire = SimDuration::Seconds(
      static_cast<double>(bytes) / cost_.wire_bandwidth_bytes_per_sec);
  busy_until = start + wire;
  SimTime delivered = busy_until + cost_.network_latency;
  // Re-check reachability at delivery time: a partition that forms while the
  // message is in flight loses the message. Cross-host delivery is at least
  // network_latency (= the executor's lookahead) in the future, which is
  // exactly why firing a worker window below Tmin + lookahead is causal.
  simulation_.ScheduleAtFor(
      delivery_affinity, delivered,
      [this, from, to, span, fn = std::move(on_delivery)]() mutable {
        messages_in_flight_.Decrement();
        if (!Reachable(from, to)) {
          messages_dropped_.Increment();
          messages_dropped_in_flight_.Increment();
          EndTransferSpan(span, /*delivered=*/false);
          return;
        }
        messages_delivered_.Increment();
        EndTransferSpan(span, /*delivered=*/true);
        fn();
      });
}

void SimNetwork::FlushBatch(NodeId from, NodeId to, std::uint64_t batch_id) {
  std::map<NodeId, PendingBatch>& by_dest = pending_batches_[from].by_dest;
  auto it = by_dest.find(to);
  // A byte-cap/urgent flush may have shipped this batch already (and a
  // successor may have opened since); the stale window event must not touch
  // it.
  if (it == by_dest.end() || it->second.id != batch_id) return;
  PendingBatch batch = std::move(it->second);
  by_dest.erase(it);
  DispatchBatch(from, to, batch.bytes, std::move(batch.deliveries));
}

void SimNetwork::DispatchBatch(NodeId from, NodeId to, std::size_t bytes,
                               std::vector<BatchEntry> deliveries) {
  batches_sent_.Increment();
  std::uint64_t span = BeginTransferSpan("net.batch", from, bytes);
  // The batch crosses the NIC as one transfer, but each message must land on
  // the locality its sender named: group the deliveries by affinity (stable,
  // first-appearance order — a single-affinity batch stays one event,
  // byte-identical to the ungrouped behavior) and give each group its own
  // delivery event at the batch's single arrival instant.
  struct Group {
    std::uint32_t affinity;
    std::vector<Delivery> fns;
  };
  std::vector<Group> groups;
  for (BatchEntry& entry : deliveries) {
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.affinity == entry.affinity) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({entry.affinity, {}});
      group = &groups.back();
    }
    group->fns.push_back(std::move(entry.fn));
  }
  auto make_deliver = [this, from, to](std::uint64_t group_span,
                                       std::vector<Delivery> fns) {
    return [this, from, to, group_span, fns = std::move(fns)]() mutable {
      messages_in_flight_.Decrement(fns.size());
      if (!Reachable(from, to)) {
        messages_dropped_.Increment(fns.size());
        messages_dropped_in_flight_.Increment(fns.size());
        EndTransferSpan(group_span, /*delivered=*/false);
        return;
      }
      messages_delivered_.Increment(fns.size());
      EndTransferSpan(group_span, /*delivered=*/true);
      for (Delivery& fn : fns) fn();
    };
  };
  SimTime arrival;
  if (from == to) {
    arrival = simulation_.Now() + SimDuration::Micros(5);
  } else {
    SimTime now = simulation_.Now();
    SimTime& busy_until = nic_busy_until_[from];
    SimTime start = std::max(now, busy_until);
    SimDuration wire = SimDuration::Seconds(
        static_cast<double>(bytes) / cost_.wire_bandwidth_bytes_per_sec);
    busy_until = start + wire;
    arrival = busy_until + cost_.network_latency;
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    // The net.batch span closes with the first group (one span per wire
    // transfer; every group arrives at the same instant).
    simulation_.ScheduleAtFor(
        groups[i].affinity, arrival,
        make_deliver(i == 0 ? span : 0, std::move(groups[i].fns)));
  }
}

void SimNetwork::BulkTransfer(NodeId from, NodeId to, std::size_t bytes,
                              Delivery on_done) {
  SimDuration total = (from == to) ? cost_.DiskRead(bytes)  // local copy
                                   : cost_.DownloadTime(bytes);
  TimedTransfer(from, to, bytes, total, std::move(on_done));
}

void SimNetwork::StreamTransfer(NodeId from, NodeId to, std::size_t bytes,
                                SimDuration setup, double peak_bytes_per_sec,
                                StreamDone on_done) {
  if (!Reachable(from, to)) {
    messages_dropped_.Increment();
    TraceSendDrop(from, to);
    // Unlike the fire-and-forget transfer paths, a stream caller is owed an
    // answer either way; defer through the event loop so the failure never
    // re-enters the caller mid-call. Stream machinery is global-owned
    // (DESIGN.md §14), so the deferral is pinned there.
    simulation_.ScheduleGlobal(
        SimDuration::Zero(),
        [fn = std::move(on_done)]() mutable { fn(false); });
    return;
  }
  messages_sent_.Increment();
  messages_in_flight_.Increment();
  bytes_sent_.Increment(bytes);
  std::uint64_t span = BeginTransferSpan("net.stream", from, bytes);
  if (from == to || peak_bytes_per_sec <= 0) {
    // Loopback (or a degenerate rate): the whole transfer is the fixed setup
    // duration — no NIC, nothing to share.
    simulation_.ScheduleGlobal(
        setup, [this, from, to, span, fn = std::move(on_done)]() mutable {
          messages_in_flight_.Decrement();
          if (!Reachable(from, to)) {
            messages_dropped_.Increment();
            messages_dropped_in_flight_.Increment();
            EndTransferSpan(span, /*delivered=*/false);
            fn(false);
            return;
          }
          messages_delivered_.Increment();
          EndTransferSpan(span, /*delivered=*/true);
          fn(true);
        });
    return;
  }
  std::uint64_t flow_id = next_stream_id_++;
  StreamFlow& flow = stream_flows_[flow_id];
  flow.from = from;
  flow.to = to;
  flow.remaining = static_cast<double>(bytes);
  flow.peak = peak_bytes_per_sec;
  flow.on_done = std::move(on_done);
  flow.span = span;
  // Stream flow state (stream_flows_, node_stream_counts_, the re-share
  // sweep) is global-owned: every mutation happens in a global-locality
  // event, so the fair-share bookkeeping needs no locks under the parallel
  // executor. Pinning the setup event keeps that true even if a data-plane
  // event starts a stream.
  flow.event = simulation_.ScheduleGlobal(
      setup, [this, flow_id]() { StartStreamPhase(flow_id); });
}

void SimNetwork::StartStreamPhase(std::uint64_t flow_id) {
  auto it = stream_flows_.find(flow_id);
  if (it == stream_flows_.end()) return;
  StreamFlow& flow = it->second;
  flow.streaming = true;
  flow.event = 0;  // the setup event just fired
  flow.last_update = simulation_.Now();
  ++node_stream_counts_[flow.from];
  ++node_stream_counts_[flow.to];
  ++streaming_count_;
  // The new membership changes every fair share touching either endpoint —
  // including this flow's own (its rate moves 0 -> share, arming completion).
  ReshareStreams(flow.from);
  ReshareStreams(flow.to);
}

void SimNetwork::ReshareStreams(NodeId node) {
  // Flow-id order == start order: the sweep is deterministic regardless of
  // container hashing or event interleaving.
  for (auto& [id, flow] : stream_flows_) {
    if (!flow.streaming) continue;
    if (flow.from != node && flow.to != node) continue;
    UpdateFlowRate(id, flow);
  }
}

void SimNetwork::UpdateFlowRate(std::uint64_t flow_id, StreamFlow& flow) {
  SimTime now = simulation_.Now();
  // Settle progress at the old rate before the share changes, so the rate
  // history integrates exactly no matter how many membership changes the
  // stream lives through.
  double elapsed = (now - flow.last_update).ToSeconds();
  flow.remaining = std::max(0.0, flow.remaining - flow.rate * elapsed);
  flow.last_update = now;
  int busiest = std::max(node_stream_counts_[flow.from],
                         node_stream_counts_[flow.to]);
  double share = cost_.wire_bandwidth_bytes_per_sec / busiest;
  double new_rate = std::min(flow.peak, share);
  if (new_rate == flow.rate) return;  // unchanged share: event stands
  bool mid_stream = flow.rate > 0;
  flow.rate = new_rate;
  if (flow.remaining <= 0) return;  // already in the latency tail
  if (flow.event != 0) simulation_.Cancel(flow.event);
  flow.event = simulation_.ScheduleAt(
      now + SimDuration::Seconds(flow.remaining / new_rate) +
          cost_.network_latency,
      [this, flow_id]() { FinishStream(flow_id); });
  if (mid_stream) {
    if (auto* tr = trace::ActiveContext()) {
      tr->Instant("fetch.share", {.category = "net", .node = flow.from});
    }
  }
}

void SimNetwork::FinishStream(std::uint64_t flow_id) {
  auto it = stream_flows_.find(flow_id);
  if (it == stream_flows_.end()) return;
  NodeId from = it->second.from;
  NodeId to = it->second.to;
  std::uint64_t span = it->second.span;
  StreamDone on_done = std::move(it->second.on_done);
  stream_flows_.erase(it);
  if (--node_stream_counts_[from] == 0) node_stream_counts_.erase(from);
  if (--node_stream_counts_[to] == 0) node_stream_counts_.erase(to);
  --streaming_count_;
  // The freed share speeds up whoever is left on these NICs.
  ReshareStreams(from);
  ReshareStreams(to);
  messages_in_flight_.Decrement();
  // Same delivery-time recheck as every other path: a partition that formed
  // while the stream was in flight loses the payload.
  if (!Reachable(from, to)) {
    messages_dropped_.Increment();
    messages_dropped_in_flight_.Increment();
    EndTransferSpan(span, /*delivered=*/false);
    on_done(false);
    return;
  }
  messages_delivered_.Increment();
  EndTransferSpan(span, /*delivered=*/true);
  on_done(true);
}

void SimNetwork::TimedTransfer(NodeId from, NodeId to, std::size_t bytes,
                               SimDuration duration, Delivery on_done) {
  if (!Reachable(from, to)) {
    messages_dropped_.Increment();
    TraceSendDrop(from, to);
    return;
  }
  // Same accounting as Send(): bulk transfers are messages too, and the
  // message-conservation invariant (sent == delivered + dropped-in-flight +
  // in-flight) must hold across both traffic classes.
  messages_sent_.Increment();
  messages_in_flight_.Increment();
  bytes_sent_.Increment(bytes);
  std::uint64_t span = BeginTransferSpan("net.bulk", from, bytes);
  simulation_.Schedule(
      duration, [this, from, to, span, fn = std::move(on_done)]() mutable {
        messages_in_flight_.Decrement();
        if (!Reachable(from, to)) {
          messages_dropped_.Increment();
          messages_dropped_in_flight_.Increment();
          EndTransferSpan(span, /*delivered=*/false);
          return;
        }
        messages_delivered_.Increment();
        EndTransferSpan(span, /*delivered=*/true);
        fn();
      });
}

}  // namespace dcdo::sim
