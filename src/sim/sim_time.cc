#include "sim/sim_time.h"

#include "common/strings.h"

namespace dcdo::sim {

std::string SimDuration::ToString() const {
  return HumanSeconds(ToSeconds());
}

std::ostream& operator<<(std::ostream& os, SimDuration d) {
  return os << d.ToString();
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << HumanSeconds(t.ToSeconds());
}

}  // namespace dcdo::sim
