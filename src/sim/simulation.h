// Deterministic discrete-event simulation engine.
//
// The Legion substrate (hosts, network, RPC, binding agents) runs as event
// handlers over this engine. Events fire in (time, insertion-sequence) order,
// so two runs of the same scenario produce identical traces. The engine is
// single-threaded by design: "threads" executing inside DCDOs are modelled as
// activity intervals (paper Section 3.2, thread activity monitoring), not OS
// threads.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/sim_time.h"

namespace dcdo::sim {

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` from now. Returns an event id usable with
  // Cancel(). Negative delays are clamped to zero.
  std::uint64_t Schedule(SimDuration delay, Callback fn);
  std::uint64_t ScheduleAt(SimTime when, Callback fn);

  // Cancels a pending event; no-op if it already fired or was cancelled.
  void Cancel(std::uint64_t event_id);

  // Runs until the queue is empty. Returns the number of events fired.
  std::size_t Run();

  // Runs events with time <= `deadline`; the clock ends at `deadline` if the
  // queue empties early. Returns events fired.
  std::size_t RunUntil(SimTime deadline);

  // Runs until `predicate()` is true or the queue empties; returns true if
  // the predicate was satisfied.
  bool RunWhile(const std::function<bool()>& pending);

  bool Idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  // Total events fired since construction (monotone; identifies "when" an
  // observation was made independent of the clock, which can stall).
  std::uint64_t events_fired() const { return events_fired_; }

  // Observer called after each event fires, with the running event count.
  // One observer at most (the checking layer); pass nullptr to clear.
  using EventObserver = std::function<void(std::uint64_t)>;
  void SetEventObserver(EventObserver observer) {
    observer_ = std::move(observer);
  }

  // Advances the clock with no event (used by host-local cost charging when
  // the caller is executing "inline" rather than via an event).
  void AdvanceInline(SimDuration delta) { now_ = now_ + delta; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopAndFire();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t events_fired_ = 0;
  EventObserver observer_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Ids cancelled while still pending; checked (and erased) as events
  // surface at the top of the queue, so Cancel is O(1) even when tens of
  // thousands of timers are torn down at once.
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace dcdo::sim
