// Deterministic discrete-event simulation engine.
//
// The Legion substrate (hosts, network, RPC, binding agents) runs as event
// handlers over this engine. Events fire in (time, insertion-sequence) order,
// so two runs of the same scenario produce identical traces. The engine is
// single-threaded by design: "threads" executing inside DCDOs are modelled as
// activity intervals (paper Section 3.2, thread activity monitoring), not OS
// threads.
//
// Storage layout: every pending event lives in a slab slot; its id encodes
// (slot, generation), so Cancel() is a direct array access — no hashing. Two
// complementary containers order the slots:
//   * a hierarchical timing wheel for the common timer shape — armed with a
//     bounded horizon and almost always cancelled before firing (RPC
//     invocation timeouts, transport retries, batching flush windows). Arming
//     is O(1) (a slot push), and Cancel() unlinks the entry immediately, so a
//     cancelled timer's callback is reclaimed at cancel time instead of
//     surviving in a heap until its deadline surfaces;
//   * a priority queue of small POD keys for near-horizon and long-range
//     events, and as the ordered staging area: wheel slots that come due are
//     flushed into the queue, which restores exact (time, seq) order. FIFO
//     among same-time events therefore holds across both containers — seq is
//     assigned at Schedule() time, not at flush time. Heap sifts move 24-byte
//     keys, never the callbacks themselves.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/move_function.h"
#include "sim/sim_time.h"

namespace dcdo::sim {

class Simulation {
 public:
  // Move-only. The 64-byte buffer is sized for the engine's small closures —
  // timer callbacks and network delivery wrappers (this + a Delivery) — which
  // are the per-event conversions on the hot path. Bulky closures (marshaled
  // invocations) fall back to one heap block and then move by pointer, so
  // relocation never deep-moves big captures.
  using Callback = common::MoveFunction<void(), 64>;

  // Slot 0 is burned with a non-zero generation so no real event ever gets
  // id 0 — callers use 0 as a "no timer armed" sentinel.
  Simulation() { slab_.emplace_back().gen = 1; }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` from now. Returns an event id usable with
  // Cancel(). Negative delays are clamped to zero.
  std::uint64_t Schedule(SimDuration delay, Callback fn);
  std::uint64_t ScheduleAt(SimTime when, Callback fn);

  // Cancels a pending event; no-op if it already fired or was cancelled.
  // O(1) for both containers: the id addresses the slab slot directly, and
  // the callback is destroyed at cancel time. (A queue-resident event leaves
  // a stale heap key behind, purged when it surfaces.)
  void Cancel(std::uint64_t event_id);

  // Runs until the queue is empty. Returns the number of events fired.
  std::size_t Run();

  // Runs events with time <= `deadline`; the clock ends at `deadline` if the
  // queue empties early. Returns events fired.
  std::size_t RunUntil(SimTime deadline);

  // Runs until `predicate()` is true or the queue empties; returns true if
  // the predicate was satisfied.
  bool RunWhile(const std::function<bool()>& pending);

  bool Idle() const { return live_count_ == 0; }
  // Exact: cancelled events are removed from the count immediately.
  std::size_t pending_events() const { return live_count_; }

  // Total events fired since construction (monotone; identifies "when" an
  // observation was made independent of the clock, which can stall).
  std::uint64_t events_fired() const { return events_fired_; }

  // Observer called after each event fires, with the running event count.
  // One observer at most (the checking layer); pass nullptr to clear.
  using EventObserver = std::function<void(std::uint64_t)>;
  void SetEventObserver(EventObserver observer) {
    observer_ = std::move(observer);
  }

  // Advances the clock with no event (used by host-local cost charging when
  // the caller is executing "inline" rather than via an event).
  void AdvanceInline(SimDuration delta) { now_ = now_ + delta; }

 private:
  // Slab entry for one pending event. `gen` is bumped when the slot is
  // freed (fire or cancel), invalidating any id or heap key minted for the
  // previous occupant.
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Callback fn;
    std::uint32_t gen = 0;
    // Wheel position, meaningful only while wheel-resident.
    std::uint32_t wheel_index = 0;  // position within the slot vector
    std::uint8_t wheel_level = 0;
    std::uint8_t wheel_slot = 0;
    bool in_wheel = false;
  };
  // What the priority queue orders: a trivially-copyable key. Sifts memcpy
  // these instead of moving callbacks.
  struct QueueKey {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const QueueKey& a, const QueueKey& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // --- Hierarchical timing wheel ---
  // Level l has 64 slots of tick 2^(16 + 6l) ns: level 0 resolves ~65.5 us
  // ticks spanning ~4.2 ms, level 3 spans ~18 min. Events beyond the top
  // span (or due within one level-0 span of the clock) go straight to the
  // queue.
  static constexpr int kWheelLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;
  static constexpr int kGranularityBits = 16;

  struct WheelLevel {
    std::array<std::vector<std::uint32_t>, kSlotsPerLevel> slots;
    std::uint64_t occupied = 0;  // bit s set iff slots[s] is non-empty
  };
  struct SlotRef {
    int level;
    int slot;
    std::int64_t start_ns;  // slot interval start (all events are >= this)
  };

  static std::uint64_t MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
  }

  std::uint32_t AllocSlot();
  // Destroys the callback, bumps the generation, and recycles the slot.
  void FreeSlot(std::uint32_t slot);

  // Places the event in `slot` into the wheel if its deadline fits a future
  // wheel slot. Returns false when it belongs in the queue.
  bool WheelInsert(std::uint32_t slot);
  // The occupied wheel slot with the earliest interval start, if any.
  std::optional<SlotRef> EarliestWheelSlot() const;
  // Flushes `ref`: level-0 events into the queue, higher levels cascade into
  // finer slots. Advances the wheel cursor to the slot start.
  void FlushWheelSlot(const SlotRef& ref);
  // Removes a wheel-resident event from its slot (swap-remove + index fixup).
  void WheelRemove(Event& event);
  // Establishes the next live event at queue_.top(): purges stale keys and
  // flushes every wheel slot that could precede the queue head. Returns
  // false when nothing is left to fire.
  bool PrepareTop();
  bool PopAndFire();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  std::size_t live_count_ = 0;
  EventObserver observer_;
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::priority_queue<QueueKey, std::vector<QueueKey>, Later> queue_;
  // Everything strictly before cursor_ns_ has been flushed out of the wheel.
  std::int64_t cursor_ns_ = 0;
  std::size_t wheel_count_ = 0;
  // Cached result of EarliestWheelSlot(); invalidated whenever a slot empties
  // (flush or cancel) and updated in place on insert. Mutable: the scan is a
  // logically-const query memoized across PrepareTop() iterations.
  mutable bool earliest_valid_ = false;
  mutable SlotRef earliest_{};
  std::array<WheelLevel, kWheelLevels> wheel_;
};

}  // namespace dcdo::sim
