// Deterministic discrete-event simulation engine.
//
// The Legion substrate (hosts, network, RPC, binding agents) runs as event
// handlers over this engine. Events fire in (time, insertion-sequence) order,
// so two runs of the same scenario produce identical traces. By default the
// engine is single-threaded: "threads" executing inside DCDOs are modelled as
// activity intervals (paper Section 3.2, thread activity monitoring), not OS
// threads. ConfigureParallel() swaps the execution substrate for the
// conservative locality executor (parallel_sim.h) — same API, same simulated
// results at any worker count, wall-clock throughput that scales with cores.
//
// Storage layout (legacy single-threaded path): every pending event lives in
// a slab slot; its id encodes (slot, generation), so Cancel() is a direct
// array access — no hashing. Two complementary containers order the slots:
//   * a hierarchical timing wheel for the common timer shape — armed with a
//     bounded horizon and almost always cancelled before firing (RPC
//     invocation timeouts, transport retries, batching flush windows). Arming
//     is O(1) (a slot push), and Cancel() unlinks the entry immediately, so a
//     cancelled timer's callback is reclaimed at cancel time instead of
//     surviving in a heap until its deadline surfaces;
//   * a priority queue of small POD keys for near-horizon and long-range
//     events, and as the ordered staging area: wheel slots that come due are
//     flushed into the queue, which restores exact (time, seq) order. FIFO
//     among same-time events therefore holds across both containers — seq is
//     assigned at Schedule() time, not at flush time. Heap sifts move 24-byte
//     keys, never the callbacks themselves.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/move_function.h"
#include "common/status.h"
#include "sim/locality.h"
#include "sim/sim_time.h"

namespace dcdo::sim {

class ParallelExecutor;

class Simulation {
 public:
  // Move-only. The 64-byte buffer is sized for the engine's small closures —
  // timer callbacks and network delivery wrappers (this + a Delivery) — which
  // are the per-event conversions on the hot path. Bulky closures (marshaled
  // invocations) fall back to one heap block and then move by pointer, so
  // relocation never deep-moves big captures. Same instantiation as EventFn
  // (locality.h).
  using Callback = common::MoveFunction<void(), 64>;

  // Slot 0 is burned with a non-zero generation so no real event ever gets
  // id 0 — callers use 0 as a "no timer armed" sentinel.
  // Both out-of-line: ParallelExecutor is incomplete here, and the ctor's
  // exception-cleanup path needs the member unique_ptr's deleter.
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return executor_ ? ExecutorNow() : now_; }

  // Schedules `fn` to run `delay` from now. Returns an event id usable with
  // Cancel(). Negative delays are clamped to zero. The event inherits the
  // scheduling context's affinity (CurrentAffinity below), which is what the
  // overwhelming majority of call sites want: a handler's follow-up work
  // runs where the handler ran.
  std::uint64_t Schedule(SimDuration delay, Callback fn);
  std::uint64_t ScheduleAt(SimTime when, Callback fn);

  // Explicit-affinity variants. `affinity` is either the NodeId whose
  // locality owns the event's state, or kAffinityGlobal for control-plane
  // work (lifecycle, config methods, fetch machinery). In the legacy
  // single-threaded configuration the affinity is recorded (so determinism
  // digests are comparable across modes) but does not change execution.
  // Under the parallel executor a cross-locality schedule from a worker
  // returns id 0 (not cancellable) — see parallel_sim.h.
  std::uint64_t ScheduleFor(std::uint32_t affinity, SimDuration delay,
                            Callback fn);
  std::uint64_t ScheduleAtFor(std::uint32_t affinity, SimTime when,
                              Callback fn);
  std::uint64_t ScheduleGlobal(SimDuration delay, Callback fn) {
    return ScheduleFor(kAffinityGlobal, delay, std::move(fn));
  }

  // Affinity of the event currently executing (kAffinityGlobal in driver
  // context between events). What Schedule/ScheduleAt stamp on new events.
  std::uint32_t CurrentAffinity() const;

  // Cancels a pending event; no-op if it already fired or was cancelled.
  // O(1) for both containers: the id addresses the slab slot directly, and
  // the callback is destroyed at cancel time. (A queue-resident event leaves
  // a stale heap key behind, purged when it surfaces.)
  void Cancel(std::uint64_t event_id);

  // Runs until the queue is empty. Returns the number of events fired.
  std::size_t Run();

  // Runs events with time <= `deadline`; the clock ends at `deadline` if the
  // queue empties early. Returns events fired.
  std::size_t RunUntil(SimTime deadline);

  // Fires events while `predicate()` returns true (checked before every
  // event). Returns true once the predicate turns false, false if the queue
  // empties first with the predicate still true. Under the parallel executor
  // the predicate is re-checked between global events and at every window
  // barrier — worker windows are not interruptible, so a predicate satisfied
  // by a worker event is noticed at the next barrier.
  bool RunWhile(const std::function<bool()>& predicate);

  bool Idle() const { return executor_ ? ExecutorIdle() : live_count_ == 0; }
  // Exact: cancelled events are removed from the count immediately.
  std::size_t pending_events() const {
    return executor_ ? ExecutorPending() : live_count_;
  }

  // Total events fired since construction (monotone; identifies "when" an
  // observation was made independent of the clock, which can stall).
  std::uint64_t events_fired() const {
    return executor_ ? ExecutorFired() : events_fired_;
  }

  // Observer called with the running event count: after each event in the
  // legacy configuration; after each global event and each window barrier
  // under the parallel executor (workers cannot stop mid-window).
  // One observer at most (the checking layer); pass nullptr to clear.
  using EventObserver = std::function<void(std::uint64_t)>;
  void SetEventObserver(EventObserver observer);

  // Advances the clock with no event (used by host-local cost charging when
  // the caller is executing "inline" rather than via an event). Under the
  // parallel executor this advances the calling locality's clock only.
  void AdvanceInline(SimDuration delta) {
    if (executor_) {
      ExecutorAdvance(delta);
    } else {
      now_ = now_ + delta;
    }
  }

  // --- Parallel execution (DESIGN.md §14) ---------------------------------

  // Swaps in the conservative locality executor: hosts are partitioned
  // across `workers` localities (node % workers), each run by a dedicated
  // thread; `lookahead` must be the minimum cross-host link latency.
  // Call on a fresh simulation (nothing scheduled or fired yet). The
  // default (never calling this) keeps the byte-identical legacy path.
  [[nodiscard]] Status ConfigureParallel(int workers, SimDuration lookahead);
  bool parallel() const { return executor_ != nullptr; }
  ParallelExecutor* executor() { return executor_.get(); }

  // Order-hash of fired events, per affinity (see locality.h): identical
  // across legacy and parallel execution at any worker count iff the
  // workload is deterministic. Off by default (one map probe per event).
  void EnableDeterminismDigest(bool on);
  std::uint64_t DeterminismDigest() const;

 private:
  // Slab entry for one pending event. `gen` is bumped when the slot is
  // freed (fire or cancel), invalidating any id or heap key minted for the
  // previous occupant.
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Callback fn;
    std::uint32_t gen = 0;
    // Wheel position, meaningful only while wheel-resident.
    std::uint32_t wheel_index = 0;  // position within the slot vector
    std::uint8_t wheel_level = 0;
    std::uint8_t wheel_slot = 0;
    bool in_wheel = false;
    // Locality ownership tag; recorded even on the legacy path so digests
    // are comparable across execution modes.
    std::uint32_t affinity = kAffinityGlobal;
  };
  // What the priority queue orders: a trivially-copyable key. Sifts memcpy
  // these instead of moving callbacks.
  struct QueueKey {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const QueueKey& a, const QueueKey& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // --- Hierarchical timing wheel ---
  // Level l has 64 slots of tick 2^(16 + 6l) ns: level 0 resolves ~65.5 us
  // ticks spanning ~4.2 ms, level 3 spans ~18 min. Events beyond the top
  // span (or due within one level-0 span of the clock) go straight to the
  // queue.
  static constexpr int kWheelLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;
  static constexpr int kGranularityBits = 16;

  struct WheelLevel {
    std::array<std::vector<std::uint32_t>, kSlotsPerLevel> slots;
    std::uint64_t occupied = 0;  // bit s set iff slots[s] is non-empty
  };
  struct SlotRef {
    int level;
    int slot;
    std::int64_t start_ns;  // slot interval start (all events are >= this)
  };

  static std::uint64_t MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
  }

  std::uint32_t AllocSlot();
  // Destroys the callback, bumps the generation, and recycles the slot.
  void FreeSlot(std::uint32_t slot);

  // Places the event in `slot` into the wheel if its deadline fits a future
  // wheel slot. Returns false when it belongs in the queue.
  bool WheelInsert(std::uint32_t slot);
  // The occupied wheel slot with the earliest interval start, if any.
  std::optional<SlotRef> EarliestWheelSlot() const;
  // Flushes `ref`: level-0 events into the queue, higher levels cascade into
  // finer slots. Advances the wheel cursor to the slot start.
  void FlushWheelSlot(const SlotRef& ref);
  // Removes a wheel-resident event from its slot (swap-remove + index fixup).
  void WheelRemove(Event& event);
  // Establishes the next live event at queue_.top(): purges stale keys and
  // flushes every wheel slot that could precede the queue head. Returns
  // false when nothing is left to fire.
  bool PrepareTop();
  bool PopAndFire();

  // Out-of-line executor shims so this header never needs the executor's
  // definition (simulation.cc includes parallel_sim.h).
  SimTime ExecutorNow() const;
  void ExecutorAdvance(SimDuration delta);
  bool ExecutorIdle() const;
  std::size_t ExecutorPending() const;
  std::uint64_t ExecutorFired() const;

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  std::size_t live_count_ = 0;
  std::uint32_t current_affinity_ = kAffinityGlobal;
  bool digest_enabled_ = false;
  std::unordered_map<std::uint32_t, std::uint64_t> digest_;
  EventObserver observer_;
  std::unique_ptr<ParallelExecutor> executor_;
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::priority_queue<QueueKey, std::vector<QueueKey>, Later> queue_;
  // Everything strictly before cursor_ns_ has been flushed out of the wheel.
  std::int64_t cursor_ns_ = 0;
  std::size_t wheel_count_ = 0;
  // Cached result of EarliestWheelSlot(); invalidated whenever a slot empties
  // (flush or cancel) and updated in place on insert. Mutable: the scan is a
  // logically-const query memoized across PrepareTop() iterations.
  mutable bool earliest_valid_ = false;
  mutable SlotRef earliest_{};
  std::array<WheelLevel, kWheelLevels> wheel_;
};

}  // namespace dcdo::sim
