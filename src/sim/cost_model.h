// CostModel: the single calibration point for every simulated cost.
//
// Values are calibrated to the paper's testbed (Section 4): the Legion
// "Centurion" machine — 16 dual 400 MHz Pentium II nodes, 256 MB RAM,
// 100 Mbps switched Ethernet — so that the bench harness reproduces the
// paper's reported magnitudes:
//   * 5.1 MB implementation download: 15-25 s   (effective ~2-3 Mbit/s applied
//     goodput through Legion's file-object protocol, not raw wire speed)
//   * 550 KB implementation download: ~4 s
//   * monolithic object creation:     ~2.2 s
//   * DCDO creation, 500 fns/50 comps: ~10 s
//   * component incorporate (cached):  ~200 us/component
//   * dynamic function call overhead:  10-15 us
//   * stale binding discovery:         25-35 s
//
// Anyone re-calibrating the reproduction edits exactly this struct.
#pragma once

#include <cstddef>

#include "common/status.h"
#include "sim/sim_time.h"

namespace dcdo::sim {

struct CostModel {
  // --- Network (100 Mbps switched Ethernet; Legion file transfer achieves a
  // fraction of wire speed due to per-block RPC round trips) ---
  double wire_bandwidth_bytes_per_sec = 100.0e6 / 8.0;  // 12.5 MB/s raw
  // Applied efficiency of bulk object/file transfer through the Legion
  // protocol stack. 0.021 yields ~262 KB/s goodput: 5.1 MB -> ~20 s and
  // 550 KB -> ~2.1 s + fixed per-transfer setup (below) ≈ the paper's 4 s.
  double bulk_transfer_efficiency = 0.021;
  SimDuration network_latency = SimDuration::Micros(300);
  // Fixed cost to open a transfer session with a file/component object
  // (lookup, authentication, buffer negotiation).
  SimDuration transfer_setup = SimDuration::Seconds(1.8);

  // --- RPC / method invocation ---
  SimDuration rpc_marshal_per_call = SimDuration::Micros(450);
  SimDuration rpc_dispatch = SimDuration::Micros(350);
  double marshal_bytes_per_sec = 40.0e6;  // memcpy-bound marshaling

  // --- Send batching (per-destination coalescing in SimNetwork) ---
  // Back-to-back small messages from one node to one destination are held
  // for up to this window and shipped as a single NIC transfer. Zero (the
  // calibrated default) disables batching entirely: every message takes the
  // exact legacy path, so paper-calibrated sim times are unchanged unless a
  // workload opts in.
  SimDuration send_batch_window = SimDuration::Zero();
  // A batch is flushed early once it accumulates this many payload bytes,
  // bounding the latency a full pipeline adds to the first message.
  std::size_t send_batch_max_bytes = 64 * 1024;
  // Adaptive formation policy over the batching window (cortx-motr
  // rpc/formation.c shape: form by size, deadline, or urgency). When on,
  // senders may tag a message urgent — config-plane invocations and
  // protocol-critical notices — and an urgent message flushes the pending
  // batch to its destination and ships with it immediately instead of
  // waiting out the window; bulk traffic keeps coalescing. NOTE: a
  // deployment knob, NOT a calibration constant — off (with batching off)
  // reproduces the per-message legacy path byte for byte; EXPERIMENTS.md E16
  // measures when turning it on wins. No effect while send_batch_window is
  // zero.
  bool formation_policy = false;

  // --- Binding cache bound (client-side LRU; see naming/binding_cache) ---
  // Generous by default: eviction only matters under millions of distinct
  // targets. Zero means unbounded.
  std::size_t binding_cache_capacity = 65536;

  // --- Dynamic configurability mechanism (paper: 10-15 us per call) ---
  SimDuration dfm_lookup = SimDuration::Micros(12);
  // Registering one dynamic function into a DFM during incorporate.
  SimDuration dfm_register_per_function = SimDuration::Micros(15);

  // --- Object creation / processes ---
  // Spawning an object process and loading a monolithic static executable
  // that is already present on the host (2.2 s total create time includes
  // class-object RPCs; this is the spawn+load share).
  SimDuration process_spawn = SimDuration::Seconds(1.6);
  SimDuration activation_handshake = SimDuration::Millis(250);
  // Mapping one *cached* component's code image into the address space
  // (paper: ~200 us per cached component)...
  SimDuration component_map_cached = SimDuration::Micros(200);
  // ...plus a per-component session with its ICO when the image is not in
  // the host cache. Unlike whole-executable downloads (which go through
  // Legion's slow file-object protocol), component images stream directly
  // between objects at a healthy fraction of wire speed; the session
  // overhead dominates for small components. This is what makes the paper's
  // 500-fn/50-component DCDO cost ~10 s to create: 50 × (this + stream).
  SimDuration component_fetch_overhead = SimDuration::Millis(160);
  double component_transfer_efficiency = 0.6;  // of wire bandwidth

  // --- Component acquisition pipeline (src/component/fetcher.*) ---
  // Maximum ICO fetch streams a destination host keeps in flight while
  // acquiring components (DCDO creation, evolution, migration warm-up).
  // NOTE: this is a modelled-hardware/deployment knob, NOT a calibration
  // constant. 1 (the default) reproduces the paper's strictly sequential
  // acquisition — and its ~10 s / 50-component creation figure — byte for
  // byte; values > 1 opt the deployment into the overlapped pipeline
  // (bounded concurrency, single-flight per-host dedup, fair-shared links)
  // measured by EXPERIMENTS.md E13. Re-calibrating against the paper never
  // means touching this field.
  int fetch_concurrency = 1;
  // Bound on distinct component images a host caches before LRU eviction
  // (0 = unbounded, mirroring binding_cache_capacity). Eviction is safe by
  // construction: a dropped image is re-fetched from its ICO on next use.
  std::size_t component_cache_capacity = 65536;

  // --- Disk ---
  double disk_read_bytes_per_sec = 25.0e6;
  double disk_write_bytes_per_sec = 18.0e6;
  SimDuration disk_seek = SimDuration::Millis(8);

  // --- RPC sessions: bounded in-flight slots (src/rpc/session.*) ---
  // NOTE: deployment knobs, NOT calibration constants (the
  // fetch_concurrency convention). The defaults keep the PR 4 per-endpoint
  // dedup window byte for byte; non-zero session_slots opts a deployment
  // into the sessioned exactly-once protocol measured by EXPERIMENTS.md E16.
  //
  // In-flight slots each client negotiates per (client, server-endpoint)
  // session. Each slot carries a monotone sequence number; the server keeps
  // "last executed seq + cached reply" per slot, so exactly-once costs
  // O(slots) memory regardless of retry schedules, migration churn, or
  // lease rebinds — no TTL arithmetic to outlive. A caller that finds every
  // slot occupied queues client-side (admission/backpressure, the
  // rpc.backpressure metric) instead of flooding the wire. 0 = sessions off:
  // at-most-once comes from the legacy TTL-tuned dedup window alone.
  int session_slots = 0;
  // Upper bound on lease-pushed rebind rounds one call may consume
  // (rpc/client.cc OnTimeout). Every pushed rebind restarts the retry round,
  // so without a cap a continuously migrating target extends the retry
  // schedule forever — retrying endlessly and outliving the legacy dedup
  // window's TTL (re-opening double execution). The dedup TTL budgets for
  // exactly this many extra rounds when leases are on (LeaseRebindExtension
  // below); a call that exhausts the cap falls back to the ordinary
  // stale-binding schedule and then fails. Irrelevant with leases off.
  int lease_rebind_limit = 3;
  // Cap on entries one endpoint's legacy dedup window may hold (0 =
  // unbounded). The window caches a full reply per completed call for the
  // whole TTL (~61 s at the defaults), so a hot endpoint during an overload
  // spike would otherwise hold TTL x call-rate replies in memory; past the
  // cap the oldest entry is evicted early (rpc.dedup_capacity_evictions) —
  // trading a sliver of the at-most-once window, under exactly the overload
  // the sessioned path handles in O(slots), for a hard memory bound.
  std::size_t dedup_window_max_entries = 8192;

  // --- Binding / stale-address discovery (paper: 25-35 s) ---
  // A call on a dead address times out after this long...
  SimDuration invocation_timeout = SimDuration::Seconds(10);
  // ...and Legion retries this many times before declaring the binding stale
  // and consulting the binding agent.
  int stale_retry_count = 2;
  SimDuration rebind_query = SimDuration::Millis(900);

  // --- Naming directory: sharding + binding leases (src/naming) ---
  // NOTE: like fetch_concurrency, these are modelled-deployment knobs, NOT
  // calibration constants. The defaults reproduce the paper's single
  // monolithic binding agent with timeout-probed caches byte for byte;
  // non-default values opt a deployment into the partitioned directory and
  // lease/invalidation protocol measured by EXPERIMENTS.md E14.
  //
  // Number of directory shard replicas the binding namespace is partitioned
  // across (consistent hashing). 1 = the legacy single agent.
  int naming_shard_count = 1;
  // Ring points per shard in the consistent-hash map; more points = smoother
  // balance, slightly larger ring. Irrelevant at naming_shard_count = 1.
  int naming_ring_points = 64;
  // Service time a directory shard spends on one lookup/rebind request.
  // Lookups queue behind each other on their shard, which is what makes
  // directory throughput scale with shard count. Zero = unmodelled (lookups
  // are instantaneous data-structure probes, the legacy behavior).
  SimDuration directory_lookup_service = SimDuration::Zero();
  // Lease granted to a BindingCache alongside each binding it fetches. The
  // shard remembers leaseholders and pushes an invalidation (or the fresh
  // binding) when the entry rebinds or dies; expiry is the fallback when the
  // push is lost or the holder partitioned. Zero = leases off: stale
  // bindings are discovered by the legacy timeout-probe schedule alone.
  SimDuration binding_lease_duration = SimDuration::Zero();
  // Wire size of one invalidation notification (ObjectId + address + lease).
  std::size_t invalidation_bytes = 64;

  // --- Parallel simulation localities (src/sim/parallel_sim.*) ---
  // NOTE: like fetch_concurrency, these are modelled-deployment knobs, NOT
  // calibration constants: the executor is constrained to produce the same
  // simulated results at any worker count, so sim_workers changes wall-clock
  // throughput only. 1 (the default) keeps the byte-identical single-
  // threaded engine.
  //
  // Worker localities (threads) the simulation's hosts are partitioned
  // across (node % sim_workers), capped at 16. The conservative window
  // protocol uses network_latency as its lookahead, so parallel execution
  // requires a positive network latency, and is incompatible with the
  // in-place modelled lookup service (see directory_remote_requests below);
  // ValidateCostModel rejects those combinations. Send batching composes
  // with parallel execution: batches carry each delivery's locality
  // affinity, batch state is partitioned per sender node (a node's sends
  // all execute on the locality owning it, or on the coordinator between
  // worker windows), and cross-node batch deliveries land at least one
  // network latency (= the lookahead) in the future.
  int sim_workers = 1;
  // Route directory lookups as real request messages to the shard's host
  // instead of mutating the shard's service queue from the client's context.
  // Required whenever sim_workers > 1 meets directory_lookup_service > 0:
  // the shard's NIC then serializes concurrent lookups deterministically.
  // Off by default — the in-place model stays byte-identical to PR 7.
  bool directory_remote_requests = false;
  // Wire size of one directory lookup request (ObjectId + holder id).
  std::size_t directory_request_bytes = 64;

  // --- State capture / restore for monolithic evolution ---
  double state_capture_bytes_per_sec = 6.0e6;
  double state_restore_bytes_per_sec = 8.0e6;

  // Derived helpers -----------------------------------------------------

  // Time to push `bytes` through the bulk-transfer path (excluding setup).
  SimDuration BulkTransferTime(std::size_t bytes) const {
    double goodput = wire_bandwidth_bytes_per_sec * bulk_transfer_efficiency;
    return SimDuration::Seconds(static_cast<double>(bytes) / goodput) +
           network_latency;
  }

  // Full download: session setup + streaming.
  SimDuration DownloadTime(std::size_t bytes) const {
    return transfer_setup + BulkTransferTime(bytes);
  }

  // Component image fetch from an ICO: per-component session overhead +
  // object-to-object streaming (much faster than the file-object path).
  SimDuration ComponentDownloadTime(std::size_t bytes) const {
    double goodput =
        wire_bandwidth_bytes_per_sec * component_transfer_efficiency;
    return component_fetch_overhead +
           SimDuration::Seconds(static_cast<double>(bytes) / goodput) +
           network_latency;
  }

  // Small-message (invocation) path: latency + marshaling of `bytes`.
  SimDuration MessageTime(std::size_t bytes) const {
    return network_latency +
           SimDuration::Seconds(static_cast<double>(bytes) /
                                wire_bandwidth_bytes_per_sec) +
           SimDuration::Seconds(static_cast<double>(bytes) /
                                marshal_bytes_per_sec);
  }

  SimDuration DiskRead(std::size_t bytes) const {
    return disk_seek + SimDuration::Seconds(static_cast<double>(bytes) /
                                            disk_read_bytes_per_sec);
  }
  SimDuration DiskWrite(std::size_t bytes) const {
    return disk_seek + SimDuration::Seconds(static_cast<double>(bytes) /
                                            disk_write_bytes_per_sec);
  }

  SimDuration StateCapture(std::size_t bytes) const {
    return SimDuration::Seconds(static_cast<double>(bytes) /
                                state_capture_bytes_per_sec);
  }
  SimDuration StateRestore(std::size_t bytes) const {
    return SimDuration::Seconds(static_cast<double>(bytes) /
                                state_restore_bytes_per_sec);
  }

  // --- Stale-binding retry schedule (single source of truth) ---
  // The client protocol (rpc/client.cc) sends up to this many attempts per
  // binding round: the original send plus stale_retry_count retries.
  int RetryAttemptsPerBinding() const { return stale_retry_count + 1; }

  // Time for a client to conclude its cached binding is stale: each attempt
  // of the first round waits out the invocation timeout, plus the final
  // binding-agent query.
  SimDuration StaleBindingDiscovery() const {
    return invocation_timeout * RetryAttemptsPerBinding() + rebind_query;
  }

  // When the LAST possible retry leaves the client, measured from the first
  // send: a full first round of timeouts, the rebind query, then the rebound
  // round's sends spaced one timeout apart (50.9 s under the defaults).
  SimDuration RetryScheduleLastSend() const {
    return invocation_timeout *
               static_cast<std::int64_t>(2 * RetryAttemptsPerBinding() - 1) +
           rebind_query;
  }

  // Extra retry-schedule length lease pushes can add: each pushed rebind
  // resets the client's per-binding attempt count, so a call may send up to
  // lease_rebind_limit additional rounds of RetryAttemptsPerBinding attempts
  // (one timeout apart) before the cap forces it onto the ordinary schedule.
  // Zero with leases off — the legacy TTL arithmetic is untouched.
  SimDuration LeaseRebindExtension() const {
    if (binding_lease_duration <= SimDuration::Zero()) {
      return SimDuration::Zero();
    }
    return invocation_timeout * static_cast<std::int64_t>(
                                    lease_rebind_limit *
                                    RetryAttemptsPerBinding());
  }

  // How long a server-side dedup entry must survive: it is inserted when the
  // FIRST attempt arrives, and must still be there when the last retry lands,
  // plus one timeout of slack for that retry's own transit. Under leases the
  // pushed-rebind rounds extend the schedule, so the TTL budgets for the
  // capped extension too — the PR 9 fix for rebind-reopened double
  // execution on the legacy (non-sessioned) path.
  SimDuration DedupWindowTtl() const {
    return RetryScheduleLastSend() + LeaseRebindExtension() +
           invocation_timeout;
  }

  // True when any non-default naming-directory feature is active (sharding,
  // modelled lookup service, or leases) — the testbed then attaches the
  // binding agent to the simulation and spawns per-shard hosts.
  bool NamingDirectoryModeled() const {
    return naming_shard_count > 1 ||
           directory_lookup_service > SimDuration::Zero() ||
           binding_lease_duration > SimDuration::Zero();
  }
};

// Sanity checks for a (possibly re-calibrated) cost model; the defaults pass.
[[nodiscard]] Status ValidateCostModel(const CostModel& model);

}  // namespace dcdo::sim
