// One simulation locality: a partition of the event space with its own
// clock, run queue, and sequence counter (cortx-motr's reqh locality shape
// applied to a conservative parallel DES).
//
// The parallel executor (parallel_sim.h) owns W worker localities — each
// responsible for a fixed subset of sim hosts (node % W) — plus one *global*
// locality for control-plane events (lifecycle, config methods, fetch
// machinery, driver code). Within a locality, events fire in exact
// (time, sequence) order on a single thread, so per-locality execution is
// deterministic by the same argument as the legacy engine. Cross-locality
// scheduling goes through a mutex-protected mailbox whose entries carry a
// deterministic (when, origin, origin_seq) sort key; mailboxes are drained
// only at phase barriers, so the arrival interleaving of pushes never leaks
// into execution order.
//
// The container here is deliberately simpler than Simulation's timing wheel:
// a slab plus one priority queue of POD keys. Parallel workloads are
// delivery-dominated (near-horizon events that bypass the wheel anyway), and
// cancelled timers still destroy their callbacks eagerly at cancel time —
// only a 24-byte stale key lingers until it surfaces.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/move_function.h"
#include "sim/sim_time.h"

namespace dcdo::sim {

// Same instantiation as Simulation::Callback (simulation.h re-exports it);
// defined here so locality.h never needs to include simulation.h.
using EventFn = common::MoveFunction<void(), 64>;

// Affinity of control-plane events. Anything scheduled with this affinity
// runs serially in the global locality, interleaved with worker windows at
// barriers; anything scheduled with a node id runs on the worker locality
// that owns that node. See DESIGN.md §14 for the ownership rules.
inline constexpr std::uint32_t kAffinityGlobal = 0xffffffffu;

// --- Thread identity -------------------------------------------------------
// Which locality (and which event affinity) the calling thread is currently
// executing for. Set by the executor around every event; read by
// Simulation::Schedule to inherit affinity and to route insertions. -1 means
// "not an executor-managed context" (only possible before ConfigureParallel).
int CurrentThreadLocality();
void SetCurrentThreadLocality(int locality);
std::uint32_t CurrentThreadAffinity();
void SetCurrentThreadAffinity(std::uint32_t affinity);

// --- Determinism digest ----------------------------------------------------
// Per-affinity FNV-style accumulator over fired-event timestamps. Within one
// affinity, events fire in nondecreasing `when` order in every mode (legacy,
// or parallel at any worker count) and same-timestamp ties contribute equal
// values, so the accumulator is executor-invariant iff the simulation is
// deterministic. The cross-affinity combine sorts by affinity id, making the
// final digest independent of which locality finished last.
inline std::uint64_t DigestStep(std::uint64_t acc, std::int64_t when_ns) {
  return (acc ^ static_cast<std::uint64_t>(when_ns)) * 1099511628211ull;
}
std::uint64_t CombineDigests(
    const std::unordered_map<std::uint32_t, std::uint64_t>& per_affinity);

class Locality {
 public:
  explicit Locality(std::uint32_t index) : index_(index) {
    slab_.emplace_back().gen = 1;  // burn slot 0: no event gets id 0
  }
  Locality(const Locality&) = delete;
  Locality& operator=(const Locality&) = delete;

  std::uint32_t index() const { return index_; }
  SimTime now() const { return now_; }
  void set_now(SimTime t) {
    now_ = t;
    last_fired_ = t;
  }
  void AdvanceInline(SimDuration delta) { now_ = now_ + delta; }

  // Timestamp of the most recently fired event — the clock EXCLUDING any
  // AdvanceInline the event's callback added on top. This is the causal
  // position of the locality: an insertion at or after last_fired() cannot
  // reorder against anything that already executed, even when the cosmetic
  // cost-model clock (now()) has been inflated past it. The executor drains
  // the global mailbox against this floor, because inline advances routinely
  // exceed the lookahead (rpc_marshal_per_call > network_latency) and the
  // legacy engine orders purely by event timestamps.
  SimTime last_fired() const { return last_fired_; }

  // --- Owner-thread API ----------------------------------------------------
  // Callable only from the thread that owns this locality, or from the
  // coordinator while every worker is parked at a barrier.

  // Schedules an event at exactly `when` — no clamping here. The legacy
  // engine clamps `when` against the SCHEDULING context's clock (one shared
  // clock), so the executor applies that clamp at the caller's locality
  // before routing; clamping again at the target against now_ would reorder
  // cross-locality arrivals that legacy fires in timestamp order (the target
  // clock may sit inline-advanced past a perfectly causal arrival). The
  // returned id encodes this locality's index so Cancel can route without a
  // lookup.
  std::uint64_t ScheduleLocal(SimTime when, std::uint32_t affinity,
                              EventFn fn);
  // No-op if the id does not name a live event of this locality.
  void CancelLocal(std::uint64_t id);

  // Earliest pending event time; false if the locality is idle. Purges stale
  // (cancelled) queue keys as a side effect.
  bool PeekNext(SimTime* when);

  // Fires every event with `when < limit`, in (when, seq) order, advancing
  // the local clock to each event's timestamp. Returns the number fired.
  std::size_t RunWindow(SimTime limit);

  // Fires the single earliest event regardless of any limit (the global
  // locality is driven one event at a time so the coordinator can re-check
  // horizons and predicates between events). False if idle.
  bool FireOne();

  std::size_t live_count() const { return live_count_; }
  // Relaxed atomic: summed across localities (Simulation::events_fired) by
  // check-layer stamps taken on any worker thread mid-window.
  std::uint64_t events_fired() const {
    return events_fired_.load(std::memory_order_relaxed);
  }

  void EnableDigest(bool on) { digest_enabled_ = on; }
  const std::unordered_map<std::uint32_t, std::uint64_t>& digest() const {
    return digest_;
  }

  // --- Cross-thread API ----------------------------------------------------

  // Appends an event to the mailbox. Callable from any locality thread;
  // (origin, origin_seq) must be unique per push so the drain-time sort has
  // a total order that does not depend on arrival interleaving.
  void PushRemote(SimTime when, std::uint32_t origin, std::uint64_t origin_seq,
                  std::uint32_t affinity, EventFn fn);

  // Barrier-only: sorts the mailbox by (when, origin, origin_seq) and moves
  // every entry into the local queue with fresh local sequence numbers.
  // Entries with `when < floor` violate the lookahead contract; they are
  // clamped to `floor` and counted in the return value (the determinism
  // suite asserts the count stays zero).
  std::size_t DrainMailbox(SimTime floor);

  // Pending mailbox entries (lock-free count mirror).
  std::size_t MailboxSize() const {
    return mailbox_count_.load(std::memory_order_acquire);
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq = 0;
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t affinity = kAffinityGlobal;
  };
  struct QueueKey {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const QueueKey& a, const QueueKey& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Remote {
    SimTime when;
    std::uint32_t origin;
    std::uint64_t origin_seq;
    std::uint32_t affinity;
    EventFn fn;
  };

  // Ids pack (locality+1, 24-bit generation, slot): the top byte routes
  // Cancel to the owning locality, and 16.7M generations per slot keep
  // recycled-id collisions out of any plausible run length.
  std::uint64_t MakeId(std::uint32_t slot, std::uint32_t gen) const {
    return (static_cast<std::uint64_t>(index_ + 1) << 56) |
           (static_cast<std::uint64_t>(gen & 0xffffffu) << 32) | slot;
  }

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t slot);
  bool PrepareTop();  // purge stale keys; false when idle

  std::uint32_t index_;
  SimTime now_;
  SimTime last_fired_;
  std::uint64_t next_seq_ = 0;
  std::atomic<std::uint64_t> events_fired_{0};
  std::size_t live_count_ = 0;
  bool digest_enabled_ = false;
  std::unordered_map<std::uint32_t, std::uint64_t> digest_;
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::priority_queue<QueueKey, std::vector<QueueKey>, Later> queue_;

  mutable std::mutex mailbox_mu_;
  std::vector<Remote> mailbox_;
  // Mirror of mailbox_.size(), written under mailbox_mu_. Lets the
  // coordinator's per-iteration drain sweep (and PendingEvents) skip the
  // mutex for the overwhelmingly common empty case; the release store in
  // PushRemote pairs with the acquire load so a nonzero count always leads
  // the reader to take the lock and see the entries.
  std::atomic<std::size_t> mailbox_count_{0};
};

}  // namespace dcdo::sim
