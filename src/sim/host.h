// SimHost: a simulated machine in the testbed.
//
// Models the pieces of a Legion host that the evaluation exercises:
//   * an architecture tag (heterogeneity drives implementation-type checks),
//   * a process table (object activations run as processes; spawning costs
//     CostModel::process_spawn),
//   * a local file store (downloaded executables / captured state), and
//   * a component cache (the paper's "components are cached and available to
//     the DCDO that is evolving" fast path, ~200 us per incorporate).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/object_id.h"
#include "common/status.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "trace/metrics.h"

namespace dcdo::sim {

// 1999-era Legion platforms; used as implementation-type architectures.
enum class Architecture : std::uint8_t {
  kX86Linux,
  kSparcSolaris,
  kAlphaOsf,
  kX86Nt,
};

std::string_view ArchitectureName(Architecture arch);

using ProcessId = std::uint64_t;

class SimHost {
 public:
  SimHost(Simulation* simulation, SimNetwork* network, NodeId node,
          Architecture arch)
      : simulation_(*simulation), network_(*network), node_(node),
        arch_(arch) {
    network_.AddNode(node);
  }

  NodeId node() const { return node_; }
  Architecture architecture() const { return arch_; }
  bool up() const { return network_.NodeUp(node_); }
  void SetUp(bool up) { network_.SetNodeUp(node_, up); }

  // --- Processes ---

  // Spawns a process for `owner` after CostModel::process_spawn; calls
  // `on_ready(pid)`. The process also charges executable load time for
  // `executable_bytes` read from the local file store.
  void SpawnProcess(ObjectId owner, std::size_t executable_bytes,
                    std::function<void(ProcessId)> on_ready);

  // Registers a process immediately, with no spawn cost. Used for long-lived
  // service objects (binding agents, ICOs, managers) whose startup predates
  // the measured window of an experiment.
  ProcessId AdoptProcess(ObjectId owner);

  // Kills a process immediately (no cost; SIGKILL-like).
  [[nodiscard]] Status KillProcess(ProcessId pid);

  bool ProcessAlive(ProcessId pid) const { return processes_.contains(pid); }
  std::optional<ObjectId> ProcessOwner(ProcessId pid) const;
  std::size_t process_count() const { return processes_.size(); }

  // --- File store (named blobs with sizes; contents tracked by size only) ---

  void StoreFile(const std::string& name, std::size_t bytes);
  bool HasFile(const std::string& name) const { return files_.contains(name); }
  std::optional<std::size_t> FileSize(const std::string& name) const;
  void RemoveFile(const std::string& name);

  // --- Component cache (LRU, bounded by
  // CostModel::component_cache_capacity; 0 = unbounded). Eviction is safe by
  // construction: a dropped image is re-fetched from its ICO on next use. ---

  void CacheComponent(const ObjectId& component, std::size_t bytes);
  // Lookups count as use: a hit refreshes the entry's LRU position, exactly
  // like BindingCache — the incorporate fast path keeps hot images resident.
  bool ComponentCached(const ObjectId& component) const;
  std::optional<std::size_t> CachedComponentSize(
      const ObjectId& component) const;
  void EvictComponent(const ObjectId& component);
  std::size_t cached_component_count() const {
    return component_cache_.size();
  }
  std::uint64_t component_evictions() const {
    return component_evictions_.value();
  }

  Simulation& simulation() { return simulation_; }
  SimNetwork& network() { return network_; }
  const CostModel& cost_model() const { return network_.cost_model(); }

 private:
  struct Process {
    ObjectId owner;
    SimTime started;
  };

  struct CachedComponent {
    std::size_t bytes = 0;
    std::list<ObjectId>::iterator lru_it;  // position in lru_ (front = MRU)
  };

  void TouchComponent(const CachedComponent& entry) const {
    // LRU recency refresh on a logically-const lookup. SimHost is driven
    // only by the single-threaded simulation event loop, so the mutable
    // list write cannot race.
    component_lru_.splice(component_lru_.begin(),  // NOLINT(dcdo-mutable-nonatomic-in-const)
                          component_lru_, entry.lru_it);
  }

  Simulation& simulation_;
  SimNetwork& network_;
  NodeId node_;
  Architecture arch_;
  ProcessId next_pid_ = 1;
  std::unordered_map<ProcessId, Process> processes_;
  std::unordered_map<std::string, std::size_t> files_;
  std::unordered_map<ObjectId, CachedComponent, ObjectIdHash>
      component_cache_;
  // mutable: const lookups refresh recency, as in BindingCache.
  mutable std::list<ObjectId> component_lru_;  // front = most recently used
  trace::Counter component_evictions_;
};

}  // namespace dcdo::sim
