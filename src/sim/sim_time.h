// Simulated time.
//
// All costs in the evaluation — downloads, process spawns, stale-binding
// timeouts — are charged in simulated time so results are deterministic and
// independent of the machine running the reproduction. SimTime is a strong
// integer nanosecond count; SimDuration is the corresponding difference type.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace dcdo::sim {

class SimDuration {
 public:
  constexpr SimDuration() = default;
  static constexpr SimDuration Nanos(std::int64_t ns) { return SimDuration(ns); }
  static constexpr SimDuration Micros(std::int64_t us) {
    return SimDuration(us * 1000);
  }
  static constexpr SimDuration Millis(std::int64_t ms) {
    return SimDuration(ms * 1000 * 1000);
  }
  static constexpr SimDuration Seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimDuration Zero() { return SimDuration(0); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }

  std::string ToString() const;  // human units, e.g. "4.03 s", "200 us"

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ + b.ns_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ - b.ns_);
  }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) {
    return SimDuration(a.ns_ * k);
  }
  SimDuration& operator+=(SimDuration other) {
    ns_ += other.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

 private:
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime FromNanos(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime Zero() { return SimTime(0); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime(t.ns_ + d.nanos());
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration::Nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimDuration d);
std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace dcdo::sim
