// Gated locking for structures shared between simulation localities.
//
// The parallel executor (DESIGN.md §14) alternates two phases: a serial
// *global* phase run by the coordinator thread, and a *worker* phase where
// each locality thread fires only events owned by its own hosts. Most
// runtime state never crosses that ownership line, so it needs no lock at
// all — the barrier between phases provides the happens-before edge. The
// handful of structures that ARE touched from more than one locality within
// a single worker phase (the network's batch map, a directory shard's lease
// table) take a GatedMutex: a real mutex when the parallel executor is
// active, and a no-op in the default single-threaded configuration, so the
// legacy path pays nothing and stays byte-identical.
#pragma once

#include <atomic>
#include <mutex>

namespace dcdo::sim {

namespace internal {
inline std::atomic<bool> g_parallel_active{false};
}  // namespace internal

// True while a Simulation in this process is configured with the parallel
// locality executor. Set by ConfigureParallel, cleared when the executor is
// destroyed. Process-wide rather than per-simulation: tests run simulations
// sequentially, and a false positive only costs an uncontended lock.
inline bool ParallelExecutionActive() {
  return internal::g_parallel_active.load(std::memory_order_relaxed);
}
inline void SetParallelExecutionActive(bool active) {
  internal::g_parallel_active.store(active, std::memory_order_relaxed);
}

// A mutex that only locks while parallel execution is active.
class GatedMutex {
 public:
  GatedMutex() = default;
  GatedMutex(const GatedMutex&) = delete;
  GatedMutex& operator=(const GatedMutex&) = delete;

  std::mutex& raw() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII guard for GatedMutex. Captures the gate once at construction so a
// configuration change mid-scope (impossible by design, but cheap to make
// harmless) cannot unbalance lock/unlock.
class GatedLock {
 public:
  explicit GatedLock(GatedMutex& mutex)
      : mutex_(mutex), locked_(ParallelExecutionActive()) {
    if (locked_) mutex_.raw().lock();
  }
  ~GatedLock() {
    if (locked_) mutex_.raw().unlock();
  }
  GatedLock(const GatedLock&) = delete;
  GatedLock& operator=(const GatedLock&) = delete;

 private:
  GatedMutex& mutex_;
  bool locked_;
};

}  // namespace dcdo::sim
