#include "sim/cost_model.h"

#include "common/status.h"

namespace dcdo::sim {

// Sanity checks used by tests: a cost model that violates these would make
// the reproduction's arithmetic meaningless (e.g. negative bandwidth).
Status ValidateCostModel(const CostModel& m) {
  if (m.wire_bandwidth_bytes_per_sec <= 0) {
    return InvalidArgumentError("wire bandwidth must be positive");
  }
  if (m.bulk_transfer_efficiency <= 0 || m.bulk_transfer_efficiency > 1.0) {
    return InvalidArgumentError("bulk transfer efficiency must be in (0,1]");
  }
  if (m.component_transfer_efficiency <= 0 ||
      m.component_transfer_efficiency > 1.0) {
    return InvalidArgumentError(
        "component transfer efficiency must be in (0,1]");
  }
  if (m.stale_retry_count < 0) {
    return InvalidArgumentError("stale retry count must be non-negative");
  }
  if (m.session_slots < 0) {
    return InvalidArgumentError("session slots must be non-negative");
  }
  if (m.lease_rebind_limit < 0) {
    return InvalidArgumentError("lease rebind limit must be non-negative");
  }
  if (m.fetch_concurrency < 1) {
    return InvalidArgumentError("fetch concurrency must be at least 1");
  }
  if (m.naming_shard_count < 1) {
    return InvalidArgumentError("naming shard count must be at least 1");
  }
  if (m.naming_ring_points < 1) {
    return InvalidArgumentError("naming ring points must be at least 1");
  }
  if (m.directory_lookup_service < SimDuration::Zero()) {
    return InvalidArgumentError(
        "directory lookup service time must be non-negative");
  }
  if (m.binding_lease_duration < SimDuration::Zero()) {
    return InvalidArgumentError("binding lease duration must be non-negative");
  }
  if (m.sim_workers < 1 || m.sim_workers > 16) {
    return InvalidArgumentError("sim workers must be in [1, 16]");
  }
  if (m.sim_workers > 1) {
    // The parallel executor's correctness arguments (DESIGN.md §14) depend
    // on these: lookahead comes from the link latency, and the in-place
    // lookup service mutates shard queues from the caller's thread. Send
    // batching is allowed since PR 9: batches carry per-delivery affinity
    // and batch state is partitioned per sender node (DESIGN.md §15.4).
    if (m.network_latency <= SimDuration::Zero()) {
      return InvalidArgumentError(
          "parallel simulation requires a positive network latency "
          "(the conservative lookahead)");
    }
    if (m.directory_lookup_service > SimDuration::Zero() &&
        !m.directory_remote_requests) {
      return InvalidArgumentError(
          "parallel simulation with a modelled lookup service requires "
          "directory_remote_requests");
    }
  }
  if (m.disk_read_bytes_per_sec <= 0 || m.disk_write_bytes_per_sec <= 0) {
    return InvalidArgumentError("disk bandwidth must be positive");
  }
  if (m.state_capture_bytes_per_sec <= 0 ||
      m.state_restore_bytes_per_sec <= 0) {
    return InvalidArgumentError("state bandwidth must be positive");
  }
  return Status::Ok();
}

}  // namespace dcdo::sim
