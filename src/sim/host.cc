#include "sim/host.h"

#include "common/logging.h"

namespace dcdo::sim {

std::string_view ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kX86Linux: return "x86-linux";
    case Architecture::kSparcSolaris: return "sparc-solaris";
    case Architecture::kAlphaOsf: return "alpha-osf";
    case Architecture::kX86Nt: return "x86-nt";
  }
  return "unknown";
}

void SimHost::SpawnProcess(ObjectId owner, std::size_t executable_bytes,
                           std::function<void(ProcessId)> on_ready) {
  const CostModel& cost = cost_model();
  SimDuration total = cost.process_spawn + cost.DiskRead(executable_bytes);
  simulation_.Schedule(total, [this, owner, fn = std::move(on_ready)]() {
    if (!up()) return;  // host died while spawning
    ProcessId pid = next_pid_++;
    processes_[pid] = Process{owner, simulation_.Now()};
    DCDO_LOG(kDebug) << "host " << node_ << ": spawned pid " << pid
                     << " for object " << owner;
    fn(pid);
  });
}

ProcessId SimHost::AdoptProcess(ObjectId owner) {
  ProcessId pid = next_pid_++;
  processes_[pid] = Process{owner, simulation_.Now()};
  return pid;
}

Status SimHost::KillProcess(ProcessId pid) {
  if (processes_.erase(pid) == 0) {
    return NotFoundError("no process " + std::to_string(pid) + " on host " +
                         std::to_string(node_));
  }
  return Status::Ok();
}

std::optional<ObjectId> SimHost::ProcessOwner(ProcessId pid) const {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return std::nullopt;
  return it->second.owner;
}

void SimHost::StoreFile(const std::string& name, std::size_t bytes) {
  files_[name] = bytes;
}

std::optional<std::size_t> SimHost::FileSize(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

void SimHost::RemoveFile(const std::string& name) { files_.erase(name); }

void SimHost::CacheComponent(const ObjectId& component, std::size_t bytes) {
  component_cache_[component] = bytes;
}

std::optional<std::size_t> SimHost::CachedComponentSize(
    const ObjectId& component) const {
  auto it = component_cache_.find(component);
  if (it == component_cache_.end()) return std::nullopt;
  return it->second;
}

void SimHost::EvictComponent(const ObjectId& component) {
  component_cache_.erase(component);
}

}  // namespace dcdo::sim
