#include "sim/host.h"

#include "common/logging.h"
#include "trace/trace_context.h"

namespace dcdo::sim {

std::string_view ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kX86Linux: return "x86-linux";
    case Architecture::kSparcSolaris: return "sparc-solaris";
    case Architecture::kAlphaOsf: return "alpha-osf";
    case Architecture::kX86Nt: return "x86-nt";
  }
  return "unknown";
}

void SimHost::SpawnProcess(ObjectId owner, std::size_t executable_bytes,
                           std::function<void(ProcessId)> on_ready) {
  const CostModel& cost = cost_model();
  SimDuration total = cost.process_spawn + cost.DiskRead(executable_bytes);
  simulation_.Schedule(total, [this, owner, fn = std::move(on_ready)]() {
    if (!up()) return;  // host died while spawning
    ProcessId pid = next_pid_++;
    processes_[pid] = Process{owner, simulation_.Now()};
    DCDO_LOG(kDebug) << "host " << node_ << ": spawned pid " << pid
                     << " for object " << owner;
    fn(pid);
  });
}

ProcessId SimHost::AdoptProcess(ObjectId owner) {
  ProcessId pid = next_pid_++;
  processes_[pid] = Process{owner, simulation_.Now()};
  return pid;
}

Status SimHost::KillProcess(ProcessId pid) {
  if (processes_.erase(pid) == 0) {
    return NotFoundError("no process " + std::to_string(pid) + " on host " +
                         std::to_string(node_));
  }
  return Status::Ok();
}

std::optional<ObjectId> SimHost::ProcessOwner(ProcessId pid) const {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return std::nullopt;
  return it->second.owner;
}

void SimHost::StoreFile(const std::string& name, std::size_t bytes) {
  files_[name] = bytes;
}

std::optional<std::size_t> SimHost::FileSize(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

void SimHost::RemoveFile(const std::string& name) { files_.erase(name); }

void SimHost::CacheComponent(const ObjectId& component, std::size_t bytes) {
  auto it = component_cache_.find(component);
  if (it != component_cache_.end()) {
    it->second.bytes = bytes;
    TouchComponent(it->second);
    return;
  }
  component_lru_.push_front(component);
  component_cache_.emplace(component,
                           CachedComponent{bytes, component_lru_.begin()});
  std::size_t capacity = cost_model().component_cache_capacity;
  if (capacity != 0 && component_cache_.size() > capacity) {
    const ObjectId& victim = component_lru_.back();
    DCDO_LOG(kDebug) << "host " << node_ << ": evicting component " << victim
                     << " (cache over " << capacity << ")";
    component_cache_.erase(victim);
    component_lru_.pop_back();
    component_evictions_.Increment();
    DCDO_TRACE_HOOK(
        metrics().GetCounter("host.component_cache_evictions").Increment());
  }
}

bool SimHost::ComponentCached(const ObjectId& component) const {
  auto it = component_cache_.find(component);
  if (it == component_cache_.end()) return false;
  TouchComponent(it->second);
  return true;
}

std::optional<std::size_t> SimHost::CachedComponentSize(
    const ObjectId& component) const {
  auto it = component_cache_.find(component);
  if (it == component_cache_.end()) return std::nullopt;
  TouchComponent(it->second);
  return it->second.bytes;
}

void SimHost::EvictComponent(const ObjectId& component) {
  auto it = component_cache_.find(component);
  if (it == component_cache_.end()) return;
  component_lru_.erase(it->second.lru_it);
  component_cache_.erase(it);
}

}  // namespace dcdo::sim
