// SimNetwork: a switched-Ethernet model connecting simulated hosts.
//
// Two traffic classes, matching how Legion moves data:
//   * Send():         small control messages (method invocations, replies) —
//                     latency + serialization, with per-NIC queueing.
//   * BulkTransfer(): implementation/component/state downloads — session
//                     setup + goodput-limited streaming (CostModel).
//
// Failure injection: nodes can be marked down and node pairs partitioned;
// traffic to an unreachable destination is silently dropped (the sender's
// RPC timeout, not the network, reports the failure — as on a real LAN).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"
#include "trace/metrics.h"

namespace dcdo::sim {

using NodeId = std::uint32_t;

class SimNetwork {
 public:
  // Move-only. Kept small: delivery closures that carry marshaled
  // invocations heap-allocate once and relocate by pointer; what matters is
  // that a Delivery plus the per-event wrapper capture (this + route) fits
  // the Simulation::Callback buffer, so forwarding a delivery through the
  // event loop allocates nothing.
  using Delivery = common::MoveFunction<void(), 32>;

  SimNetwork(Simulation* simulation, CostModel cost_model)
      : simulation_(*simulation), cost_(cost_model) {}

  const CostModel& cost_model() const { return cost_; }
  Simulation& simulation() { return simulation_; }

  // Registers a node; nodes start up.
  void AddNode(NodeId node);
  bool HasNode(NodeId node) const { return nodes_.contains(node); }

  void SetNodeUp(NodeId node, bool up);
  bool NodeUp(NodeId node) const;

  // Cuts (or heals) the link between two nodes; direction-symmetric.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  bool Reachable(NodeId from, NodeId to) const;

  // Delivers a control message of `bytes` from -> to, then runs `on_delivery`
  // at the destination's sim time. Dropped (never delivered) if unreachable.
  // Messages on the same sender NIC serialize behind each other.
  //
  // When CostModel::send_batch_window is non-zero, back-to-back sends to the
  // same destination are coalesced: the first message opens a batch and arms
  // a flush at now + window; follow-ups append until the window fires or the
  // batch reaches send_batch_max_bytes. The whole batch then crosses the NIC
  // as one transfer (one serialization + one latency), and reachability is
  // re-checked once at delivery — a partition that forms in flight drops
  // every message in the batch. Per-message counters are maintained either
  // way. With a zero window (the default) each message takes the exact
  // legacy path.
  void Send(NodeId from, NodeId to, std::size_t bytes, Delivery on_delivery);

  // Streams `bytes` from -> to through the bulk (file-object) path; `on_done`
  // runs when the last byte lands. Dropped if unreachable at start.
  void BulkTransfer(NodeId from, NodeId to, std::size_t bytes,
                    Delivery on_done);

  // Transfer with a caller-computed duration (used by the component-fetch
  // path, whose cost model differs from the file-object path). Same
  // reachability semantics as BulkTransfer.
  void TimedTransfer(NodeId from, NodeId to, std::size_t bytes,
                     SimDuration duration, Delivery on_done);

  // Counters (per run; benches report message counts, the checking layer's
  // message-conservation invariant requires
  //   sent == delivered + dropped-in-flight + in-flight
  // at all times, and in-flight == 0 once the simulator is idle). Stored as
  // trace::Counter — atomic, so cross-thread reads in concurrent tests are
  // race-free, and snapshotable into an installed MetricsRegistry.
  std::uint64_t messages_sent() const { return messages_sent_.value(); }
  std::uint64_t messages_delivered() const {
    return messages_delivered_.value();
  }
  std::uint64_t messages_dropped() const { return messages_dropped_.value(); }
  std::uint64_t messages_dropped_in_flight() const {
    return messages_dropped_in_flight_.value();
  }
  std::uint64_t messages_in_flight() const {
    return messages_in_flight_.value();
  }
  std::uint64_t bytes_sent() const { return bytes_sent_.value(); }
  // Batching telemetry: NIC transfers that carried a batch, and messages
  // that rode along in one (i.e. avoided their own transfer).
  std::uint64_t batches_sent() const { return batches_sent_.value(); }
  std::uint64_t messages_coalesced() const {
    return messages_coalesced_.value();
  }

 private:
  struct PendingBatch {
    std::uint64_t id = 0;  // guards the armed flush against early flushes
    std::size_t bytes = 0;
    std::vector<Delivery> deliveries;
  };

  // Ships `deliveries` (already counted as sent/in-flight) as one transfer.
  void DispatchBatch(NodeId from, NodeId to, std::size_t bytes,
                     std::vector<Delivery> deliveries);
  void FlushBatch(NodeId from, NodeId to, std::uint64_t batch_id);

  Simulation& simulation_;
  CostModel cost_;
  std::set<NodeId> nodes_;
  std::set<NodeId> down_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  std::unordered_map<NodeId, SimTime> nic_busy_until_;
  std::map<std::pair<NodeId, NodeId>, PendingBatch> pending_batches_;
  std::uint64_t next_batch_id_ = 1;
  trace::Counter batches_sent_;
  trace::Counter messages_coalesced_;
  trace::Counter messages_sent_;
  trace::Counter messages_delivered_;
  trace::Counter messages_dropped_;            // refused at send time
  trace::Counter messages_dropped_in_flight_;  // lost after acceptance
  trace::Counter messages_in_flight_;
  trace::Counter bytes_sent_;
};

}  // namespace dcdo::sim
