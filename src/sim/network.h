// SimNetwork: a switched-Ethernet model connecting simulated hosts.
//
// Two traffic classes, matching how Legion moves data:
//   * Send():         small control messages (method invocations, replies) —
//                     latency + serialization, with per-NIC queueing.
//   * BulkTransfer(): implementation/component/state downloads — session
//                     setup + goodput-limited streaming (CostModel).
//
// Failure injection: nodes can be marked down and node pairs partitioned;
// traffic to an unreachable destination is silently dropped (the sender's
// RPC timeout, not the network, reports the failure — as on a real LAN).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"
#include "trace/metrics.h"

namespace dcdo::sim {

using NodeId = std::uint32_t;

class SimNetwork {
 public:
  // Move-only. Kept small: delivery closures that carry marshaled
  // invocations heap-allocate once and relocate by pointer; what matters is
  // that a Delivery plus the per-event wrapper capture (this + route) fits
  // the Simulation::Callback buffer, so forwarding a delivery through the
  // event loop allocates nothing.
  using Delivery = common::MoveFunction<void(), 32>;

  SimNetwork(Simulation* simulation, CostModel cost_model)
      : simulation_(*simulation), cost_(cost_model) {}

  const CostModel& cost_model() const { return cost_; }
  Simulation& simulation() { return simulation_; }

  // Registers a node; nodes start up.
  void AddNode(NodeId node);
  bool HasNode(NodeId node) const { return nodes_.contains(node); }

  void SetNodeUp(NodeId node, bool up);
  bool NodeUp(NodeId node) const;

  // Cuts (or heals) the link between two nodes; direction-symmetric.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  bool Reachable(NodeId from, NodeId to) const;

  // Delivers a control message of `bytes` from -> to, then runs `on_delivery`
  // at the destination's sim time. Dropped (never delivered) if unreachable.
  // Messages on the same sender NIC serialize behind each other.
  //
  // When CostModel::send_batch_window is non-zero, back-to-back sends to the
  // same destination are coalesced: the first message opens a batch and arms
  // a flush at now + window; follow-ups append until the window fires, the
  // batch reaches send_batch_max_bytes, or (formation_policy) an urgent
  // message arrives. The whole batch then crosses the NIC as one transfer
  // (one serialization + one latency), and reachability is re-checked once
  // at delivery — a partition that forms in flight drops every message in
  // the batch. Per-message counters are maintained either way. With a zero
  // window (the default) each message takes the exact legacy path.
  //
  // The delivery event is tagged with the destination node's affinity, so
  // under the parallel executor (DESIGN.md §14) it fires on the locality
  // that owns `to`'s state. The overload takes an explicit affinity for
  // callers whose delivery must resume elsewhere (an RPC reply resuming a
  // control-plane continuation passes kAffinityGlobal). Each message keeps
  // its own affinity through a batch: at flush, deliveries are grouped by
  // affinity (first-appearance order) and each group lands as one event on
  // its own locality, all at the batch's single arrival time — a
  // single-affinity batch is byte-identical to the pre-grouping behavior.
  //
  // SendClass is the adaptive-formation hint (CostModel::formation_policy):
  // kUrgent marks latency-sensitive traffic (the transport tags config-plane
  // invocations) that must not sit out a formation window — it flushes the
  // pending batch immediately, riding along with it. kCoalesce marks
  // deadline-insensitive traffic (bulk-adjacent control chatter): it never
  // triggers the byte-cap early flush itself, so larger batches form and
  // ship on the window deadline (or when normal/urgent traffic arrives
  // behind it). kNormal obeys the window/byte rules unmodified. With
  // formation_policy off the class is ignored.
  enum class SendClass { kNormal, kUrgent, kCoalesce };

  void Send(NodeId from, NodeId to, std::size_t bytes, Delivery on_delivery) {
    Send(from, to, bytes, std::move(on_delivery), to);
  }
  void Send(NodeId from, NodeId to, std::size_t bytes, Delivery on_delivery,
            std::uint32_t delivery_affinity,
            SendClass send_class = SendClass::kNormal);

  // Streams `bytes` from -> to through the bulk (file-object) path; `on_done`
  // runs when the last byte lands. Dropped if unreachable at start.
  void BulkTransfer(NodeId from, NodeId to, std::size_t bytes,
                    Delivery on_done);

  // Transfer with a caller-computed duration (used by the component-fetch
  // path, whose cost model differs from the file-object path). Same
  // reachability semantics as BulkTransfer.
  void TimedTransfer(NodeId from, NodeId to, std::size_t bytes,
                     SimDuration duration, Delivery on_done);

  // `on_done(delivered)` — unlike Delivery, stream completions also report
  // failure (unreachable at start, dropped in flight) so the component
  // acquisition pipeline can surface the exact failed transfer instead of
  // hanging on a silent drop.
  using StreamDone = common::MoveFunction<void(bool), 32>;

  // Bulk stream with link-aware fair sharing: after a fixed `setup` phase,
  // `bytes` flow from -> to at a rate recomputed whenever a stream touching
  // either endpoint's NIC starts or finishes — concurrent streams split
  // `wire_bandwidth_bytes_per_sec` evenly per NIC (a flow gets the wire rate
  // divided by the busier of its two endpoints), and each stream is further
  // capped at `peak_bytes_per_sec` (the transfer protocol's efficiency
  // ceiling). Delivery lands `setup + stream + network_latency` after the
  // call when the stream runs alone, so a solo stream costs exactly what the
  // caller-computed TimedTransfer path charges. Loopback (from == to) skips
  // the NIC entirely: the whole transfer is the fixed `setup` (callers pass
  // the disk-copy time).
  //
  // Determinism: re-shares are recomputed in flow-id (start) order at the
  // instants flows start or finish, from integer-nanosecond inputs — two
  // runs of one scenario produce identical completion times.
  void StreamTransfer(NodeId from, NodeId to, std::size_t bytes,
                      SimDuration setup, double peak_bytes_per_sec,
                      StreamDone on_done);

  // Streams currently in their shared (post-setup) phase; tests use this to
  // prove the acquisition pipeline's concurrency bound.
  std::size_t active_streams() const { return streaming_count_; }

  // Counters (per run; benches report message counts, the checking layer's
  // message-conservation invariant requires
  //   sent == delivered + dropped-in-flight + in-flight
  // at all times, and in-flight == 0 once the simulator is idle). Stored as
  // trace::ShardedCounter — per-locality lanes, so parallel workers bump
  // message counts without bouncing a cache line; value() folds the lanes,
  // and snapshots into an installed MetricsRegistry work as before.
  std::uint64_t messages_sent() const { return messages_sent_.value(); }
  std::uint64_t messages_delivered() const {
    return messages_delivered_.value();
  }
  std::uint64_t messages_dropped() const { return messages_dropped_.value(); }
  std::uint64_t messages_dropped_in_flight() const {
    return messages_dropped_in_flight_.value();
  }
  std::uint64_t messages_in_flight() const {
    return messages_in_flight_.value();
  }
  std::uint64_t bytes_sent() const { return bytes_sent_.value(); }
  // Batching telemetry: NIC transfers that carried a batch, and messages
  // that rode along in one (i.e. avoided their own transfer).
  std::uint64_t batches_sent() const { return batches_sent_.value(); }
  std::uint64_t messages_coalesced() const {
    return messages_coalesced_.value();
  }

 private:
  // One coalesced message: its delivery closure plus the affinity its
  // delivery event must carry. Batches mix affinities (a node's outbound
  // traffic interleaves data-plane requests and control-plane replies), so
  // the affinity must ride per delivery — collapsing a batch to one affinity
  // would migrate deliveries onto the wrong locality.
  struct BatchEntry {
    Delivery fn;
    std::uint32_t affinity;
  };
  struct PendingBatch {
    std::uint64_t id = 0;  // guards the armed flush against early flushes
    std::size_t bytes = 0;
    std::vector<BatchEntry> deliveries;
  };

  // One fair-shared bulk stream (StreamTransfer). `remaining`/`rate` are
  // doubles because shares are fractional; progress is settled against the
  // integer sim clock at every re-share, so drift cannot accumulate between
  // membership changes.
  struct StreamFlow {
    NodeId from = 0;
    NodeId to = 0;
    double remaining = 0.0;  // bytes left in the stream phase
    double rate = 0.0;       // current bytes/sec; 0 while in setup
    double peak = 0.0;       // efficiency ceiling, bytes/sec
    bool streaming = false;  // false while in the fixed setup phase
    SimTime last_update;
    std::uint64_t event = 0;  // pending completion event (post-setup)
    StreamDone on_done;
    std::uint64_t span = 0;
  };

  // Ships `deliveries` (already counted as sent/in-flight) as one transfer.
  void DispatchBatch(NodeId from, NodeId to, std::size_t bytes,
                     std::vector<BatchEntry> deliveries);
  void FlushBatch(NodeId from, NodeId to, std::uint64_t batch_id);

  // Stream-phase machinery: move a flow out of setup into the shared phase,
  // re-derive the fair share of every streaming flow touching `node`, and
  // settle/deliver a finished flow.
  void StartStreamPhase(std::uint64_t flow_id);
  void ReshareStreams(NodeId node);
  void UpdateFlowRate(std::uint64_t flow_id, StreamFlow& flow);
  void FinishStream(std::uint64_t flow_id);

  Simulation& simulation_;
  CostModel cost_;
  std::set<NodeId> nodes_;
  std::set<NodeId> down_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  std::unordered_map<NodeId, SimTime> nic_busy_until_;
  // Batch state is partitioned per sender node and pre-inserted in AddNode
  // (same discipline as nic_busy_until_): a node's sends and its batch-flush
  // events all execute on the locality owning that node (or the coordinator,
  // never concurrently with it), so parallel senders touch disjoint
  // SenderBatches and never mutate the outer map's structure. The batch-id
  // guard counter lives here too — a global counter would be a cross-node
  // write race, and the ids only ever compare within one (from, to) lane.
  struct SenderBatches {
    std::map<NodeId, PendingBatch> by_dest;
    std::uint64_t next_batch_id = 1;
  };
  std::unordered_map<NodeId, SenderBatches> pending_batches_;
  // Ordered by flow id (= start order) so re-share sweeps are deterministic.
  std::map<std::uint64_t, StreamFlow> stream_flows_;
  std::unordered_map<NodeId, int> node_stream_counts_;
  std::uint64_t next_stream_id_ = 1;
  std::size_t streaming_count_ = 0;
  trace::ShardedCounter batches_sent_;
  trace::ShardedCounter messages_coalesced_;
  trace::ShardedCounter messages_sent_;
  trace::ShardedCounter messages_delivered_;
  trace::ShardedCounter messages_dropped_;            // refused at send time
  trace::ShardedCounter messages_dropped_in_flight_;  // lost after acceptance
  trace::ShardedCounter messages_in_flight_;
  trace::ShardedCounter bytes_sent_;
};

}  // namespace dcdo::sim
