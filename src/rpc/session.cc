#include "rpc/session.h"

#include <atomic>
#include <utility>

#include "trace/trace_context.h"

namespace dcdo::rpc {
namespace {

// Process-global session-id allocator, for the same reason call ids are
// global (client.cc): the server keys sessions by (origin node, session_id),
// and two clients sharing a node must not collide. 0 stays the "no session"
// sentinel.
std::atomic<std::uint64_t> g_next_session_id{1};

}  // namespace

SessionPool::Session& SessionPool::SessionFor(const ObjectAddress& address) {
  AddressKey key{address.node, address.pid, address.epoch};
  Session& session = sessions_[key];
  if (session.id == 0) {
    session.id = g_next_session_id.fetch_add(1, std::memory_order_relaxed);
    session.next_seq.assign(slots_, 1);
    session.free_slots.reserve(slots_);
    // Pushed descending so the LIFO hands out slot 0 first.
    for (std::uint32_t s = slots_; s > 0; --s) {
      session.free_slots.push_back(s - 1);
    }
  }
  return session;
}

SlotGrant SessionPool::TakeFreeSlot(Session& session) {
  SlotGrant grant;
  grant.session_id = session.id;
  grant.slot = session.free_slots.back();
  session.free_slots.pop_back();
  grant.seq = session.next_seq[grant.slot]++;
  return grant;
}

void SessionPool::Acquire(const ObjectAddress& address, GrantFn fn) {
  Session& session = SessionFor(address);
  if (!session.free_slots.empty()) {
    fn(TakeFreeSlot(session));
    return;
  }
  // Slot-saturated: park the caller instead of putting more on the wire.
  backpressure_waits_.Increment();
  ++queued_;
  DCDO_TRACE_HOOK(metrics().GetCounter("rpc.backpressure").Increment());
  session.waiting.push_back(std::move(fn));
}

void SessionPool::Release(const ObjectAddress& address, const SlotGrant& grant) {
  if (!grant.held()) return;
  AddressKey key{address.node, address.pid, address.epoch};
  auto it = sessions_.find(key);
  if (it == sessions_.end() || it->second.id != grant.session_id) {
    // The session this grant came from is gone (nothing erases sessions
    // today, but a stale grant must never corrupt a successor's free list).
    return;
  }
  Session& session = it->second;
  if (session.waiting.empty()) {
    session.free_slots.push_back(grant.slot);
    return;
  }
  // Hand the freed slot straight to the longest waiter; the slot never
  // touches the free list, so FIFO admission is exact.
  GrantFn next = std::move(session.waiting.front());
  session.waiting.pop_front();
  --queued_;
  SlotGrant handed;
  handed.session_id = session.id;
  handed.slot = grant.slot;
  handed.seq = session.next_seq[grant.slot]++;
  next(handed);
}

ServerSessionTable::Decision ServerSessionTable::Admit(
    sim::NodeId origin, std::uint64_t session_id, std::uint32_t slot,
    std::uint64_t seq) {
  if (slot >= kMaxSlots || seq == 0) return {Disposition::kDropStale};
  Session& session = sessions_[{origin, session_id}];
  if (slot >= session.slots.size()) session.slots.resize(slot + 1);
  Slot& state = session.slots[slot];
  if (seq > state.seq) {
    // A new call on this slot. seq may skip values: the client abandons a
    // call (terminal timeout) without the server ever seeing it, then the
    // slot's next occupant arrives. Taking over the slot retires the
    // previous cached reply — safe because the client serializes the slot's
    // calls, so a newer seq proves the older call's retries have ceased.
    state.seq = seq;
    state.completed = false;
    state.reply = MethodResult{};
    return {Disposition::kExecute};
  }
  if (seq == state.seq) {
    if (state.completed) return {Disposition::kReplayReply, &state.reply};
    return {Disposition::kDropInFlight};
  }
  return {Disposition::kDropStale};
}

void ServerSessionTable::Complete(sim::NodeId origin, std::uint64_t session_id,
                                  std::uint32_t slot, std::uint64_t seq,
                                  const MethodResult& reply) {
  auto it = sessions_.find({origin, session_id});
  if (it == sessions_.end()) return;
  if (slot >= it->second.slots.size()) return;
  Slot& state = it->second.slots[slot];
  if (state.seq != seq) return;  // the slot moved on; this reply is a ghost
  state.completed = true;
  state.reply = reply;
}

std::size_t ServerSessionTable::slot_count() const {
  std::size_t total = 0;
  for (const auto& [key, session] : sessions_) total += session.slots.size();
  return total;
}

}  // namespace dcdo::rpc
