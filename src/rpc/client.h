// RpcClient: the caller side of Legion method invocation.
//
// Implements the full client protocol, including the stale-binding recovery
// the paper measures (Section 4):
//
//   resolve binding from local cache
//     -> send invocation, arm invocation_timeout
//     -> on timeout, retry the same address (stale_retry_count times)
//     -> still silent: declare the binding stale, pay rebind_query to the
//        binding agent, and retry the fresh address
//     -> if the refreshed round also times out, fail with kTimeout.
//
// With the default CostModel (10 s timeout, 2 retries, ~0.9 s rebind) a
// client takes ~30 s to recover from a stale binding — inside the paper's
// observed 25-35 s band.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/object_id.h"
#include "common/status.h"
#include "naming/binding_cache.h"
#include "rpc/transport.h"

namespace dcdo::rpc {

class RpcClient {
 public:
  using Callback = std::function<void(Result<ByteBuffer>)>;

  RpcClient(RpcTransport* transport, const BindingAgent* agent,
            sim::NodeId node)
      : transport_(*transport), cache_(agent), node_(node) {}

  // Asynchronous invocation; `done` runs exactly once, in sim time.
  void Invoke(const ObjectId& target, std::string method, ByteBuffer args,
              Callback done);

  // Convenience for tests/examples: drives the simulation until the reply
  // (or terminal failure) arrives and returns it.
  Result<ByteBuffer> InvokeBlocking(const ObjectId& target, std::string method,
                                    ByteBuffer args = {});

  sim::NodeId node() const { return node_; }
  BindingCache& cache() { return cache_; }

  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t rebinds() const { return rebinds_; }
  std::uint64_t calls_started() const { return calls_started_; }

 private:
  struct CallState;
  void Attempt(const std::shared_ptr<CallState>& call);
  void OnTimeout(const std::shared_ptr<CallState>& call);

  RpcTransport& transport_;
  BindingCache cache_;
  sim::NodeId node_;
  std::uint64_t next_call_id_ = 1;
  std::uint64_t timeouts_ = 0;
  std::uint64_t rebinds_ = 0;
  std::uint64_t calls_started_ = 0;
};

}  // namespace dcdo::rpc
