// RpcClient: the caller side of Legion method invocation.
//
// Implements the full client protocol, including the stale-binding recovery
// the paper measures (Section 4):
//
//   resolve binding from local cache
//     -> send invocation, arm invocation_timeout
//     -> on timeout, retry the same address (stale_retry_count times)
//     -> still silent: declare the binding stale, pay rebind_query to the
//        binding agent, and retry the fresh address
//     -> if the refreshed round also times out, fail with kTimeout.
//
// With the default CostModel (10 s timeout, 2 retries, ~0.9 s rebind) a
// client takes ~30 s to recover from a stale binding — inside the paper's
// observed 25-35 s band.
//
// When the binding agent grants leases (binding_lease_duration > 0), the
// directory pushes fresh bindings into this client's cache the moment an
// object rebinds; a timed-out attempt then notices the pushed replacement
// and switches to it immediately instead of finishing the probe schedule,
// and new calls resolve the fresh address before their first send. A call
// switches to pushed bindings at most CostModel::lease_rebind_limit times —
// each switch restarts the retry round, so an uncapped call could retry
// forever and (worse) land a retry after the server's dedup window retired
// its entry, re-executing the body (DESIGN.md §15.2).
//
// With CostModel::session_slots > 0 every call occupies a slot of the
// per-server-endpoint session (src/rpc/session.h) for its whole lifetime:
// slots are acquired before the first attempt (queueing client-side when all
// are busy — the admission/backpressure point) and every slot the call ever
// acquired is released only when the call finishes — a rebind keeps the old
// activation's slot so a rebind BACK resends the same (slot, seq) and
// replays instead of re-executing. Retries carry the same (session, slot,
// seq), which is what lets the server dedup them from never-expiring
// O(slots) state.
//
// Fast-path mechanics (invisible to callers):
//   * per-call state comes from a thread-local free list, not the heap;
//   * arguments live in one shared buffer for the life of the call, so every
//     retry attempt reuses it instead of copying;
//   * a method name that is already interned (and is not a configuration
//     method) ships as a fixed-width FunctionId — the server dispatches with
//     zero string hashing. Never-interned names use the string wire form.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/object_id.h"
#include "common/status.h"
#include "dfm/function_id.h"
#include "naming/binding_cache.h"
#include "rpc/session.h"
#include "rpc/transport.h"
#include "trace/metrics.h"

namespace dcdo::rpc {

class RpcClient {
 public:
  using Callback = std::function<void(Result<ByteBuffer>)>;

  // The agent pointer is non-const: under leases the cache registers itself
  // as a leaseholder (and lease-granting lookups record it).
  RpcClient(RpcTransport* transport, BindingAgent* agent, sim::NodeId node)
      : transport_(*transport),
        cache_(agent, transport->cost_model().binding_cache_capacity, node),
        node_(node),
        sessions_(transport->cost_model().session_slots) {}

  // Asynchronous invocation; `done` runs exactly once, in sim time.
  // Ships by-id when `method` is already interned and not a config method.
  void Invoke(const ObjectId& target, std::string method, ByteBuffer args,
              Callback done);

  // By-id invocation for callers that hold a pre-resolved FunctionId (the
  // proxy layer). `args` may be null for an empty argument list; the same
  // buffer is shared across retry attempts.
  void Invoke(const ObjectId& target, FunctionId method,
              std::shared_ptr<const ByteBuffer> args, Callback done);

  // Convenience for tests/examples: drives the simulation until the reply
  // (or terminal failure) arrives and returns it.
  [[nodiscard]] Result<ByteBuffer> InvokeBlocking(const ObjectId& target, std::string method,
                                    ByteBuffer args = {});
  [[nodiscard]] Result<ByteBuffer> InvokeBlocking(const ObjectId& target, FunctionId method,
                                    std::shared_ptr<const ByteBuffer> args = {});

  sim::NodeId node() const { return node_; }
  BindingCache& cache() { return cache_; }

  std::uint64_t timeouts() const { return timeouts_.value(); }
  std::uint64_t rebinds() const { return rebinds_.value(); }
  std::uint64_t calls_started() const { return calls_started_.value(); }
  // Calls that switched to a lease-pushed fresh binding mid-flight instead
  // of burning the full timeout-probe schedule. Always 0 with leases off.
  std::uint64_t lease_rebinds() const { return lease_rebinds_.value(); }
  // Sessioned admission (session_slots > 0): calls that ever had to queue
  // for a slot, and calls currently parked waiting. Always 0 otherwise.
  std::uint64_t backpressure_waits() const {
    return sessions_.backpressure_waits();
  }
  std::size_t queued_calls() const { return sessions_.queued(); }

 private:
  struct CallState;
  // One pooled allocation covering the CallState and its shared_ptr control
  // block, recycled call-to-call through common::PoolAllocator.
  static std::shared_ptr<CallState> AcquireCallState();
  void StartCall(const std::shared_ptr<CallState>& call);
  void Attempt(const std::shared_ptr<CallState>& call);
  void OnTimeout(const std::shared_ptr<CallState>& call);
  // Session slot lifecycle: AcquireSlot runs Attempt once a slot on the
  // call's current address is granted (reusing the call's existing grant
  // when it rebinds back to an activation it already attempted, inline when
  // a slot is free, queued otherwise); ReleaseSlots returns every slot the
  // call holds when it finishes. Neither runs when sessions are off.
  void AcquireSlot(const std::shared_ptr<CallState>& call);
  void ReleaseSlots(const std::shared_ptr<CallState>& call);
  [[nodiscard]] Result<ByteBuffer> DriveToCompletion(std::optional<Result<ByteBuffer>>& out);

  RpcTransport& transport_;
  BindingCache cache_;
  sim::NodeId node_;
  // Per-server-endpoint sessions (unused when session_slots == 0).
  SessionPool sessions_;
  // One-entry memo of the last name->id resolution. The intern table is
  // append-only and a name's id is immutable, so a positive memo can never
  // go stale; steady-state callers re-invoking the same method skip the
  // global table's shared lock and hash probe entirely.
  std::string last_method_;
  FunctionId last_method_id_;
  // Call ids are allocated from a process-global atomic (client.cc): the
  // server's dedup window keys on (origin node, call_id), and two clients on
  // one node each counting from 1 would collide.
  trace::Counter timeouts_;
  trace::Counter rebinds_;
  trace::Counter calls_started_;
  trace::Counter lease_rebinds_;
};

}  // namespace dcdo::rpc
