// RPC sessions: bounded in-flight slots giving exactly-once in O(slots)
// memory (DESIGN.md §15).
//
// The PR 4 dedup window proves at-most-once by TTL arithmetic: a cached
// reply must outlive the client's whole retry schedule. That holds only as
// long as the schedule is bounded — and PR 7's lease pushes unbounded it
// (every pushed rebind restarts the retry round). Sessions replace the
// arithmetic with structure, the cortx-motr rpc/conn.c + rpc/item.c slot
// model:
//
//   * each (client, server endpoint) pair holds a session of
//     CostModel::session_slots slots;
//   * a call occupies one slot for its whole lifetime (every retry carries
//     the same (session, slot, seq)); the slot's sequence number advances
//     only when the NEXT call takes the slot;
//   * the server keeps, per slot, only "last executed seq + cached reply".
//     A duplicate (same seq) replays the cache or is dropped while the
//     original executes; an older seq is provably a ghost of an abandoned
//     call and is dropped. Nothing ever expires, so a retry landing
//     arbitrarily late — after any number of lease rebinds — still dedups.
//
// Slot exhaustion is the admission/flow-control point: a caller that finds
// every slot occupied queues client-side (rpc.backpressure) until a slot
// frees, instead of flooding a saturated server with more in-flight state.
//
// A real distributed motr negotiates sessions over the wire (the two sides
// must agree slot counts and resend lists across address spaces). Here both
// sides share one process and one CostModel, so establishment is implicit:
// session ids are process-globally unique, and the server materializes a
// session's slot state the first time it sees the id. Server state lives
// per endpoint activation (like the dedup window), so re-registration
// resets it — exactly the legacy window's epoch semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "naming/address.h"
#include "rpc/message.h"
#include "sim/host.h"
#include "sim/network.h"
#include "trace/metrics.h"

namespace dcdo::rpc {

// What a client call carries once a slot is granted. Stable for the call's
// lifetime on one binding: retries resend identical values.
struct SlotGrant {
  std::uint64_t session_id = 0;  // 0 = no grant held
  std::uint32_t slot = 0;
  std::uint64_t seq = 0;

  bool held() const { return session_id != 0; }
};

// Client side: one pool per RpcClient, holding a session per server
// endpoint the client talks to. Sessions are keyed by the full activation
// address (node, pid, epoch) — a rebind lands the call in the successor
// activation's session, mirroring the server's per-activation state.
//
// Single-threaded by construction: a client's calls all execute on the
// locality that owns the client's node (or the global one), the same
// confinement CallState already relies on.
class SessionPool {
 public:
  // `slots` is CostModel::session_slots; the pool must not be used when 0.
  explicit SessionPool(int slots) : slots_(static_cast<std::uint32_t>(slots)) {}

  using GrantFn = std::function<void(SlotGrant)>;

  // Grants a slot on `address`'s session — immediately (fn runs inline)
  // when one is free, otherwise fn is queued FIFO behind the session's
  // in-flight calls and runs when a slot is released. The queued case is
  // the backpressure signal (counted, plus the rpc.backpressure metric).
  void Acquire(const ObjectAddress& address, GrantFn fn);

  // Returns `grant`'s slot to `address`'s session and hands it to the
  // longest-waiting queued caller, if any (their fn runs inline). No-op for
  // a grant not held (session_id 0).
  void Release(const ObjectAddress& address, const SlotGrant& grant);

  // Calls that had to wait for a slot (admission queue entries ever made).
  std::uint64_t backpressure_waits() const {
    return backpressure_waits_.value();
  }
  // Callers currently parked waiting for a slot, across all sessions.
  std::size_t queued() const { return queued_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    std::vector<std::uint64_t> next_seq;  // per slot; seq 1 is the first
    std::vector<std::uint32_t> free_slots;  // LIFO: hottest slot reused first
    std::deque<GrantFn> waiting;
  };
  struct AddressKey {
    sim::NodeId node;
    sim::ProcessId pid;
    std::uint64_t epoch;
    friend bool operator==(const AddressKey&, const AddressKey&) = default;
  };
  struct AddressKeyHash {
    std::size_t operator()(const AddressKey& key) const noexcept {
      std::uint64_t mixed = (static_cast<std::uint64_t>(key.node) << 32) ^
                            static_cast<std::uint64_t>(key.pid);
      mixed ^= key.epoch * 0x9e3779b97f4a7c15ull;
      return std::hash<std::uint64_t>{}(mixed);
    }
  };

  Session& SessionFor(const ObjectAddress& address);
  SlotGrant TakeFreeSlot(Session& session);

  std::uint32_t slots_;
  std::unordered_map<AddressKey, Session, AddressKeyHash> sessions_;
  std::size_t queued_ = 0;
  trace::Counter backpressure_waits_;
};

// Server side: per-endpoint slot state, held by RpcTransport next to the
// legacy dedup window. Sessions materialize on first contact; slots
// materialize lazily up to the index the client uses (bounded by the
// client's CostModel::session_slots, with a hard sanity cap so a corrupt
// slot index cannot balloon memory).
class ServerSessionTable {
 public:
  // Ordered duplicate taxonomy for the dispatch path.
  enum class Disposition {
    kExecute,        // new seq on this slot: run the body
    kReplayReply,    // same seq, completed: ship the cached reply back
    kDropInFlight,   // same seq, original still executing: drop silently
    kDropStale,      // older seq: ghost of an abandoned call, drop silently
  };

  struct Decision {
    Disposition disposition;
    // Valid only for kReplayReply; points into the slot (stable until the
    // slot's seq advances, which cannot happen before the caller copies it —
    // the dispatch path is one event).
    const MethodResult* reply = nullptr;
  };

  // Slot indexes at or above this are treated as kDropStale (a client
  // never legitimately produces them; see session_slots validation).
  static constexpr std::uint32_t kMaxSlots = 4096;

  Decision Admit(sim::NodeId origin, std::uint64_t session_id,
                 std::uint32_t slot, std::uint64_t seq);

  // Records the executed call's reply for replay — only while the slot
  // still belongs to `seq` (a parked reply completing after the client
  // abandoned the call and reused the slot must not clobber the successor).
  void Complete(sim::NodeId origin, std::uint64_t session_id,
                std::uint32_t slot, std::uint64_t seq, const MethodResult& reply);

  std::size_t session_count() const { return sessions_.size(); }
  // Total slot records held — the O(slots) bound tests pin.
  std::size_t slot_count() const;

 private:
  struct Slot {
    std::uint64_t seq = 0;  // last seq admitted for execution; 0 = never used
    bool completed = false;
    MethodResult reply;  // valid once completed
  };
  struct Session {
    std::vector<Slot> slots;
  };
  using Key = std::pair<sim::NodeId, std::uint64_t>;  // (origin, session_id)
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t mixed = (static_cast<std::uint64_t>(key.first) << 32) ^
                            (key.second * 0x9e3779b97f4a7c15ull);
      return std::hash<std::uint64_t>{}(mixed);
    }
  };

  std::unordered_map<Key, Session, KeyHash> sessions_;
};

}  // namespace dcdo::rpc
