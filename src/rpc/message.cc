#include "rpc/message.h"

#include <utility>
#include <vector>

namespace dcdo::rpc {

namespace {
std::vector<ByteBuffer>& Pool() {
  thread_local std::vector<ByteBuffer> pool;
  return pool;
}
}  // namespace

ByteBuffer WireBufferPool::Acquire() {
  std::vector<ByteBuffer>& pool = Pool();
  if (!pool.empty()) {
    ByteBuffer buffer = std::move(pool.back());
    pool.pop_back();
    buffer.Clear();
    return buffer;
  }
  ByteBuffer buffer;
  buffer.Reserve(kHeaderBytes);
  return buffer;
}

void WireBufferPool::Release(ByteBuffer buffer) {
  std::vector<ByteBuffer>& pool = Pool();
  if (pool.size() >= kMaxPooled || buffer.capacity() == 0) return;
  buffer.Clear();
  pool.push_back(std::move(buffer));
}

std::size_t WireBufferPool::PooledCount() { return Pool().size(); }

}  // namespace dcdo::rpc
