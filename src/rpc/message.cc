#include "rpc/message.h"

// MethodInvocation/MethodResult are header-only aggregates; this TU anchors
// the library target.
namespace dcdo::rpc {}
