#include "rpc/message.h"

#include <utility>
#include <vector>

namespace dcdo::rpc {

FunctionId MethodInvocation::ResolvedId() const {
  if (!method_id.valid()) return FunctionId::Invalid();
  // Trust the id only if the local intern table already covers the sender's
  // epoch; a receiver that has never seen the name (or a forged/corrupt id)
  // falls back to the string form instead of misresolving.
  //
  // Soundness caveat: "table long enough" implies "identical id->name
  // mapping" ONLY because FunctionNameTable::Global() is one process-global,
  // append-only table that every simulated node reads — covering the
  // sender's epoch means both sides see the very same prefix. If per-node
  // intern tables are ever modeled (the real first-contact negotiation this
  // epoch stands in for), equal length would no longer imply equal content,
  // and the wire form must carry a content check — e.g. a hash of the
  // method name alongside the id — validated here before the id is trusted.
  if (name_epoch == 0 || method_id.value >= name_epoch ||
      name_epoch > FunctionNameTable::Global().size()) {
    return FunctionId::Invalid();
  }
  return method_id;
}

std::string_view MethodInvocation::method_name() const {
  if (!method.empty()) return method;
  FunctionId id = ResolvedId();
  if (id.valid()) return FunctionNameTable::Global().NameOf(id);
  return {};
}

namespace {
std::vector<ByteBuffer>& Pool() {
  thread_local std::vector<ByteBuffer> pool;
  return pool;
}
}  // namespace

ByteBuffer WireBufferPool::Acquire() {
  std::vector<ByteBuffer>& pool = Pool();
  if (!pool.empty()) {
    ByteBuffer buffer = std::move(pool.back());
    pool.pop_back();
    buffer.Clear();
    return buffer;
  }
  ByteBuffer buffer;
  buffer.Reserve(kHeaderBytes);
  return buffer;
}

void WireBufferPool::Release(ByteBuffer buffer) {
  std::vector<ByteBuffer>& pool = Pool();
  if (pool.size() >= kMaxPooled || buffer.capacity() == 0) return;
  buffer.Clear();
  pool.push_back(std::move(buffer));
}

std::size_t WireBufferPool::PooledCount() { return Pool().size(); }

}  // namespace dcdo::rpc
