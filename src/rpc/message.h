// Wire-level types for Legion-style method invocation.
//
// A MethodInvocation names a target object (location-independent ObjectId),
// a method, and carries marshaled arguments. The expected activation epoch
// travels with the call so a process can reject invocations addressed to a
// previous activation of itself (the stale-binding signal).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/object_id.h"
#include "common/status.h"

namespace dcdo::rpc {

// Fixed per-message header overhead added to every wire message, covering
// addressing, security context, and Legion's message envelope.
inline constexpr std::size_t kHeaderBytes = 96;

struct MethodInvocation {
  ObjectId target;
  std::string method;
  ByteBuffer args;
  std::uint64_t expected_epoch = 0;
  std::uint64_t call_id = 0;  // assigned by the client; echoed in the reply

  std::size_t WireSize() const {
    return kHeaderBytes + method.size() + args.size();
  }
};

// A small freelist of wire buffers so steady-state request/reply traffic
// serializes into recycled capacity instead of allocating per message.
// Thread-local: the simulator's hot paths are single-threaded per thread of
// execution, so no lock is needed. Usage:
//
//   Writer writer(WireBufferPool::Acquire());   // reuses pooled capacity
//   ... write fields ...
//   ByteBuffer wire = std::move(writer).Take();
//   ... ship it; once the contents are consumed ...
//   WireBufferPool::Release(std::move(wire));   // capacity returns to pool
//
// Release is optional — a buffer that is never returned is simply freed.
class WireBufferPool {
 public:
  // A buffer with whatever capacity its previous life grew (empty contents),
  // or a fresh one reserved to kHeaderBytes if the pool is dry.
  static ByteBuffer Acquire();

  // Returns `buffer` to the pool for reuse; drops it if the pool is full.
  static void Release(ByteBuffer buffer);

  // Buffers currently parked in this thread's pool (for tests/benches).
  static std::size_t PooledCount();

 private:
  static constexpr std::size_t kMaxPooled = 8;
};

struct MethodResult {
  Status status;
  ByteBuffer payload;

  std::size_t WireSize() const { return kHeaderBytes + payload.size(); }

  static MethodResult Ok(ByteBuffer payload = {}) {
    return MethodResult{Status::Ok(), std::move(payload)};
  }
  static MethodResult Error(Status status) {
    return MethodResult{std::move(status), {}};
  }
};

}  // namespace dcdo::rpc
