// Wire-level types for Legion-style method invocation.
//
// A MethodInvocation names a target object (location-independent ObjectId),
// a method, and carries marshaled arguments. The expected activation epoch
// travels with the call so a process can reject invocations addressed to a
// previous activation of itself (the stale-binding signal).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/object_id.h"
#include "common/status.h"

namespace dcdo::rpc {

// Fixed per-message header overhead added to every wire message, covering
// addressing, security context, and Legion's message envelope.
inline constexpr std::size_t kHeaderBytes = 96;

struct MethodInvocation {
  ObjectId target;
  std::string method;
  ByteBuffer args;
  std::uint64_t expected_epoch = 0;
  std::uint64_t call_id = 0;  // assigned by the client; echoed in the reply

  std::size_t WireSize() const {
    return kHeaderBytes + method.size() + args.size();
  }
};

struct MethodResult {
  Status status;
  ByteBuffer payload;

  std::size_t WireSize() const { return kHeaderBytes + payload.size(); }

  static MethodResult Ok(ByteBuffer payload = {}) {
    return MethodResult{Status::Ok(), std::move(payload)};
  }
  static MethodResult Error(Status status) {
    return MethodResult{std::move(status), {}};
  }
};

}  // namespace dcdo::rpc
