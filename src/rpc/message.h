// Wire-level types for Legion-style method invocation.
//
// A MethodInvocation names a target object (location-independent ObjectId),
// a method, and carries marshaled arguments. The expected activation epoch
// travels with the call so a process can reject invocations addressed to a
// previous activation of itself (the stale-binding signal).
//
// Method naming has a fast and a slow wire form:
//   * by-id (fast path): an interned FunctionId plus the name-table epoch the
//     sender requires, serialized fixed-width (kMethodIdWireBytes). The
//     receiver dispatches with zero string hashing. The epoch lets a receiver
//     whose intern table has not yet seen the name reject the id instead of
//     misresolving it — the sender then falls back to the string form
//     (first-contact negotiation).
//   * by-name (slow path): the method string travels on the wire. Used for
//     configuration methods ("dcdo.*", "mgr.*", which are dispatched by the
//     configurable-object layer, not the method table), for names never
//     interned, and as the negotiation fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/object_id.h"
#include "common/status.h"
#include "dfm/function_id.h"

namespace dcdo::rpc {

// Fixed per-message header overhead added to every wire message, covering
// addressing, security context, and Legion's message envelope.
inline constexpr std::size_t kHeaderBytes = 96;

// Wire footprint of the by-id method form: u32 FunctionId + u32 name epoch.
inline constexpr std::size_t kMethodIdWireBytes = 8;

// Wire footprint of the session carriage (u64 session id + u32 slot +
// u64 slot sequence), present only on sessioned invocations — unsessioned
// traffic's wire size is untouched.
inline constexpr std::size_t kSessionWireBytes = 20;

// Configuration methods are dispatched by name in the configurable-object
// layer (Dcdo/Manager), before any method table is consulted; they must stay
// on the string path so that layer keeps seeing them.
inline bool IsConfigMethodName(std::string_view name) {
  return name.starts_with("dcdo.") || name.starts_with("mgr.");
}

struct MethodInvocation {
  ObjectId target;
  // By-name (slow-path) method; empty when the id form is used instead.
  std::string method;
  // By-id (fast-path) method + the intern-table epoch it was minted under.
  FunctionId method_id;
  std::uint32_t name_epoch = 0;
  std::uint64_t expected_epoch = 0;
  std::uint64_t call_id = 0;  // assigned by the client; echoed in the reply
  // Session carriage (src/rpc/session.*): 0 = unsessioned, the legacy dedup
  // window governs at-most-once. Non-zero names the client session this call
  // occupies a slot of; (session_slot, session_seq) let the server's
  // per-slot "last executed seq + cached reply" state give exactly-once in
  // O(slots) memory. Retries of one logical call carry identical values.
  std::uint64_t session_id = 0;
  std::uint32_t session_slot = 0;
  std::uint64_t session_seq = 0;

  // The id form, iff it is trustworthy at this receiver: the local intern
  // table must have reached the sender's epoch (so the id maps to the same
  // name here). Invalid() otherwise — callers then use method_name().
  FunctionId ResolvedId() const;

  // The method name regardless of wire form: `method` when non-empty, else
  // the interned name of a resolvable id, else empty.
  std::string_view method_name() const;

  // Fills in the id form for an interned method (also records the epoch).
  void SetMethodId(FunctionId id) {
    method_id = id;
    name_epoch = id.valid() ? id.value + 1 : 0;
  }

  // Argument storage: either owned, or shared with the caller so retries
  // reuse one buffer instead of copying per attempt.
  const ByteBuffer& args() const { return shared_args_ ? *shared_args_ : args_; }
  void SetArgs(ByteBuffer args) {
    args_ = std::move(args);
    shared_args_.reset();
  }
  void SetSharedArgs(std::shared_ptr<const ByteBuffer> args) {
    shared_args_ = std::move(args);
    args_ = ByteBuffer{};
  }

  std::size_t WireSize() const {
    return kHeaderBytes +
           (method_id.valid() ? kMethodIdWireBytes : method.size()) +
           (session_id != 0 ? kSessionWireBytes : 0) + args().size();
  }

 private:
  ByteBuffer args_;
  std::shared_ptr<const ByteBuffer> shared_args_;
};

// A small freelist of wire buffers so steady-state request/reply traffic
// serializes into recycled capacity instead of allocating per message.
// Thread-local: the simulator's hot paths are single-threaded per thread of
// execution, so no lock is needed. Usage:
//
//   Writer writer(WireBufferPool::Acquire());   // reuses pooled capacity
//   ... write fields ...
//   ByteBuffer wire = std::move(writer).Take();
//   ... ship it; once the contents are consumed ...
//   WireBufferPool::Release(std::move(wire));   // capacity returns to pool
//
// Release is optional — a buffer that is never returned is simply freed.
class WireBufferPool {
 public:
  // A buffer with whatever capacity its previous life grew (empty contents),
  // or a fresh one reserved to kHeaderBytes if the pool is dry.
  static ByteBuffer Acquire();

  // Returns `buffer` to the pool for reuse; drops it if the pool is full.
  static void Release(ByteBuffer buffer);

  // Buffers currently parked in this thread's pool (for tests/benches).
  static std::size_t PooledCount();

 private:
  static constexpr std::size_t kMaxPooled = 8;
};

struct MethodResult {
  Status status;
  ByteBuffer payload;

  std::size_t WireSize() const { return kHeaderBytes + payload.size(); }

  static MethodResult Ok(ByteBuffer payload = {}) {
    return MethodResult{Status::Ok(), std::move(payload)};
  }
  static MethodResult Error(Status status) {
    return MethodResult{std::move(status), {}};
  }
};

}  // namespace dcdo::rpc
