#include "rpc/transport.h"

#include "check/check_context.h"
#include "common/logging.h"

namespace dcdo::rpc {

void RpcTransport::RegisterEndpoint(sim::NodeId node, sim::ProcessId pid,
                                    std::uint64_t epoch, Handler handler) {
  endpoints_[{node, pid}] = Endpoint{epoch, std::move(handler)};
  DCDO_CHECK_HOOK(OnEndpointOpened(node, pid, epoch));
}

void RpcTransport::UnregisterEndpoint(sim::NodeId node, sim::ProcessId pid) {
  endpoints_.erase({node, pid});
  DCDO_CHECK_HOOK(OnEndpointClosed(node, pid));
}

void RpcTransport::Invoke(sim::NodeId from_node, sim::NodeId to_node,
                          sim::ProcessId to_pid, MethodInvocation invocation,
                          ReplyFn on_reply) {
  const sim::CostModel& cost = cost_model();
  sim::Simulation& simulation = network_.simulation();

  // Sender-side marshaling happens before the message hits the wire.
  simulation.AdvanceInline(
      cost.rpc_marshal_per_call +
      sim::SimDuration::Seconds(static_cast<double>(invocation.args.size()) /
                                cost.marshal_bytes_per_sec));

  std::size_t wire_bytes = invocation.WireSize();
  network_.Send(
      from_node, to_node, wire_bytes,
      [this, from_node, to_node, to_pid, invocation = std::move(invocation),
       on_reply = std::move(on_reply)]() mutable {
        auto it = endpoints_.find({to_node, to_pid});
        if (it == endpoints_.end()) {
          // Dead process: the invocation vanishes; caller's timeout fires.
          DCDO_LOG(kDebug) << "rpc: no endpoint at node " << to_node << "/pid "
                           << to_pid << " for " << invocation.method;
          return;
        }
        if (invocation.expected_epoch != 0 &&
            it->second.epoch != invocation.expected_epoch) {
          // Same (node, pid) reused by a newer activation: the old-epoch
          // invocation is silently discarded, exactly like a message to a
          // dead address.
          ++epoch_rejections_;
          DCDO_LOG(kDebug) << "rpc: epoch mismatch at node " << to_node
                           << " for " << invocation.method;
          return;
        }
        ++invocations_delivered_;
        sim::Simulation& simulation = network_.simulation();
        simulation.AdvanceInline(cost_model().rpc_dispatch);
        // Wrap the reply so it travels back over the network to the caller.
        ReplyFn wire_reply = [this, from_node, to_node,
                              on_reply = std::move(on_reply)](
                                 MethodResult result) mutable {
          std::size_t reply_bytes = result.WireSize();
          network_.Send(to_node, from_node, reply_bytes,
                        [on_reply = std::move(on_reply),
                         result = std::move(result)]() mutable {
                          on_reply(std::move(result));
                        });
        };
        it->second.handler(invocation, std::move(wire_reply));
      });
}

}  // namespace dcdo::rpc
