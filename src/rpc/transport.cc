#include "rpc/transport.h"

#include <memory>

#include "check/check_context.h"
#include "common/logging.h"
#include "common/pool_allocator.h"

namespace dcdo::rpc {
namespace {

// One call in flight: the invocation and the caller's continuation ride the
// whole round trip together in a single pooled block. Every closure along
// the way (delivery, the handler's reply functor, the reply delivery)
// captures only the owning pointer, so the large payloads are moved into
// place exactly once and the closures stay within their inline buffers.
struct InFlight {
  RpcTransport* transport;
  sim::NodeId from_node;
  sim::NodeId to_node;
  sim::ProcessId to_pid;
  MethodInvocation invocation;
  ReplyFn on_reply;
};

struct InFlightDelete {
  void operator()(InFlight* call) const noexcept {
    call->~InFlight();
    common::PoolFree<sizeof(InFlight)>(call);
  }
};
using InFlightPtr = std::unique_ptr<InFlight, InFlightDelete>;

}  // namespace

void RpcTransport::RegisterEndpoint(sim::NodeId node, sim::ProcessId pid,
                                    std::uint64_t epoch, Handler handler) {
  endpoints_[{node, pid}] = Endpoint{epoch, std::move(handler)};
  DCDO_CHECK_HOOK(OnEndpointOpened(node, pid, epoch));
}

void RpcTransport::UnregisterEndpoint(sim::NodeId node, sim::ProcessId pid) {
  endpoints_.erase({node, pid});
  DCDO_CHECK_HOOK(OnEndpointClosed(node, pid));
}

void RpcTransport::Invoke(sim::NodeId from_node, sim::NodeId to_node,
                          sim::ProcessId to_pid, MethodInvocation invocation,
                          ReplyFn on_reply) {
  const sim::CostModel& cost = cost_model();
  sim::Simulation& simulation = network_.simulation();

  // Sender-side marshaling happens before the message hits the wire.
  simulation.AdvanceInline(
      cost.rpc_marshal_per_call +
      sim::SimDuration::Seconds(static_cast<double>(invocation.args().size()) /
                                cost.marshal_bytes_per_sec));

  std::size_t wire_bytes = invocation.WireSize();
  // Return the block to the pool if a member's move constructor throws
  // (mirrors the spill path in MoveFunction).
  void* block = common::PoolAllocate<sizeof(InFlight)>();
  InFlightPtr call;
  try {
    call = InFlightPtr(::new (block) InFlight{this, from_node, to_node, to_pid,
                                              std::move(invocation),
                                              std::move(on_reply)});
  } catch (...) {
    common::PoolFree<sizeof(InFlight)>(block);
    throw;
  }
  network_.Send(
      from_node, to_node, wire_bytes, [this, call = std::move(call)]() mutable {
        auto it = endpoints_.find({call->to_node, call->to_pid});
        if (it == endpoints_.end()) {
          // Dead process: the invocation vanishes; caller's timeout fires.
          DCDO_LOG(kDebug) << "rpc: no endpoint at node " << call->to_node
                           << "/pid " << call->to_pid << " for "
                           << call->invocation.method_name();
          return;
        }
        if (call->invocation.expected_epoch != 0 &&
            it->second.epoch != call->invocation.expected_epoch) {
          // Same (node, pid) reused by a newer activation: the old-epoch
          // invocation is silently discarded, exactly like a message to a
          // dead address.
          ++epoch_rejections_;
          DCDO_LOG(kDebug) << "rpc: epoch mismatch at node " << call->to_node
                           << " for " << call->invocation.method_name();
          return;
        }
        ++invocations_delivered_;
        network_.simulation().AdvanceInline(cost_model().rpc_dispatch);
        // Hand the handler a reference into the block and move the block
        // itself into the reply functor; the reference stays valid for as
        // long as the handler keeps the functor alive (the documented
        // contract), and the reply travels back over the network to the
        // caller when the handler fires it.
        const MethodInvocation& invocation = call->invocation;
        ReplyFn wire_reply = [call =
                                  std::move(call)](MethodResult result) mutable {
          RpcTransport* transport = call->transport;
          const sim::NodeId to_node = call->to_node;
          const sim::NodeId from_node = call->from_node;
          std::size_t reply_bytes = result.WireSize();
          transport->network_.Send(
              to_node, from_node, reply_bytes,
              [call = std::move(call), result = std::move(result)]() mutable {
                call->on_reply(std::move(result));
              });
        };
        it->second.handler(invocation, std::move(wire_reply));
      });
}

}  // namespace dcdo::rpc
