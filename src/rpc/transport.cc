#include "rpc/transport.h"

#include <deque>
#include <memory>
#include <string>

#include "check/check_context.h"
#include "common/logging.h"
#include "common/pool_allocator.h"
#include "rpc/session.h"
#include "trace/trace_context.h"

namespace dcdo::rpc {

// Per-endpoint at-most-once state: one entry per (origin node, call_id) seen
// by this activation. An entry is "in flight" until the handler produces its
// reply, then caches that reply for replay. Entries never re-arm, so the
// insertion-order deque IS the expiry order and the TTL sweep is a lazy
// front-pop — run on every delivery to the endpoint and, for endpoints that
// go idle, on any endpoint registration (SweepDedupWindows) — no simulator
// events, so a traced or untraced run's event count and quiescence time are
// untouched.
class DedupWindow {
 public:
  struct Entry {
    bool completed = false;
    MethodResult reply;  // valid once completed
  };
  using Key = std::pair<sim::NodeId, std::uint64_t>;  // (origin, call_id)

  // Null when absent or already retired.
  Entry* Find(const Key& key) {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  Entry& Insert(const Key& key, sim::SimTime expires_at) {
    order_.push_back({key, expires_at});
    return entries_[key];
  }

  // Retires entries whose TTL has passed; returns how many.
  std::size_t PurgeExpired(sim::SimTime now) {
    std::size_t purged = 0;
    while (!order_.empty() && order_.front().expires_at <= now) {
      entries_.erase(order_.front().key);
      order_.pop_front();
      ++purged;
    }
    return purged;
  }

  // Capacity bound (CostModel::dedup_window_max_entries): evicts oldest-first
  // until an Insert would keep the window at or under `max_entries`; returns
  // how many. 0 = unbounded. Unlike TTL retirement this can forget an answer
  // the retry schedule still needs, which is why evictions are counted
  // separately — the cap trades a bounded risk of re-execution under extreme
  // fan-in for a hard memory bound (sessions remove the trade entirely).
  std::size_t EnforceCapacity(std::size_t max_entries) {
    std::size_t evicted = 0;
    while (max_entries != 0 && entries_.size() >= max_entries &&
           !order_.empty()) {
      entries_.erase(order_.front().key);
      order_.pop_front();
      ++evicted;
    }
    return evicted;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t mixed = (static_cast<std::uint64_t>(key.first) << 32) ^
                            (key.second * 0x9e3779b97f4a7c15ull);
      return std::hash<std::uint64_t>{}(mixed);
    }
  };
  struct Order {
    Key key;
    sim::SimTime expires_at;
  };

  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::deque<Order> order_;  // insertion order == expiry order
};

namespace {

// How long an entry must survive: the window must outlive the client's whole
// retry schedule — an entry is inserted when the FIRST attempt arrives and
// must still be there when the LAST possible retry lands. The arithmetic
// lives in CostModel (RetryScheduleLastSend + one timeout of transit slack)
// so this window and CostModel::StaleBindingDiscovery() derive from the same
// attempt count and can never desynchronize on a knob change.
sim::SimDuration DedupTtl(const sim::CostModel& cost) {
  return cost.DedupWindowTtl();
}

// One call in flight: the invocation and the caller's continuation ride the
// whole round trip together in a single pooled block. Every closure along
// the way (delivery, the handler's reply functor, the reply delivery)
// captures only the owning pointer, so the large payloads are moved into
// place exactly once and the closures stay within their inline buffers.
struct InFlight {
  RpcTransport* transport;
  sim::NodeId from_node;
  sim::NodeId to_node;
  sim::ProcessId to_pid;
  MethodInvocation invocation;
  ReplyFn on_reply;
  // Set at delivery: the receiving endpoint's dedup window (unsessioned
  // path) or session table (sessioned path), so the reply functor can cache
  // the handler's answer for replay. At most one is non-null.
  std::shared_ptr<DedupWindow> window;
  std::shared_ptr<ServerSessionTable> sessions;
  // Trace carriage across the async hops (0 = untraced).
  std::uint64_t send_span = 0;
  std::uint64_t dispatch_span = 0;
  // Locality that owns the caller's continuation, captured at Invoke: the
  // reply delivery is tagged with it so a data-plane caller resumes on its
  // own locality and a control-plane caller in the global one.
  std::uint32_t reply_affinity = sim::kAffinityGlobal;
};

struct InFlightDelete {
  void operator()(InFlight* call) const noexcept {
    call->~InFlight();
    common::PoolFree<sizeof(InFlight)>(call);
  }
};
using InFlightPtr = std::unique_ptr<InFlight, InFlightDelete>;

}  // namespace

void RpcTransport::RegisterEndpoint(sim::NodeId node, sim::ProcessId pid,
                                    std::uint64_t epoch, Handler handler,
                                    EndpointConcurrency concurrency) {
  // Registrations are the one recurring event every long scenario has, so
  // piggyback a sweep of ALL endpoint windows here: an endpoint that went
  // idle (no further deliveries) still sheds its expired entries and their
  // cached replies instead of holding them forever.
  SweepDedupWindows();
  endpoints_[{node, pid}] = Endpoint{epoch, std::move(handler),
                                     std::make_shared<DedupWindow>(),
                                     std::make_shared<ServerSessionTable>(),
                                     concurrency};
  DCDO_CHECK_HOOK(OnEndpointOpened(node, pid, epoch));
}

void RpcTransport::SweepDedupWindows() {
  const sim::SimTime now = network_.simulation().Now();
  std::size_t purged = 0;
  for (auto& [key, endpoint] : endpoints_) {
    purged += endpoint.dedup->PurgeExpired(now);
  }
  if (purged != 0) {
    dedup_evictions_.Increment(purged);
    DCDO_TRACE_HOOK(
        metrics().GetCounter("rpc.dedup_evictions").Increment(purged));
  }
}

void RpcTransport::UnregisterEndpoint(sim::NodeId node, sim::ProcessId pid) {
  endpoints_.erase({node, pid});
  DCDO_CHECK_HOOK(OnEndpointClosed(node, pid));
}

void RpcTransport::Invoke(sim::NodeId from_node, sim::NodeId to_node,
                          sim::ProcessId to_pid, MethodInvocation invocation,
                          ReplyFn on_reply) {
  const sim::CostModel& cost = cost_model();
  sim::Simulation& simulation = network_.simulation();

  // Dispatch affinity: application traffic to a kParallel endpoint runs on
  // the locality owning the destination node. Everything else — config-plane
  // methods (dcdo.*/mgr.*), serialized endpoints, an endpoint not (yet)
  // registered — dispatches in the global locality. An endpoint that appears
  // between send and delivery is then handled serially, which is merely
  // conservative.
  std::uint32_t dispatch_affinity = sim::kAffinityGlobal;
  const bool config_plane = IsConfigMethodName(invocation.method_name());
  if (auto ep = endpoints_.find({to_node, to_pid});
      ep != endpoints_.end() &&
      ep->second.concurrency == EndpointConcurrency::kParallel &&
      !config_plane) {
    dispatch_affinity = static_cast<std::uint32_t>(to_node);
  }
  const std::uint32_t reply_affinity = simulation.CurrentAffinity();
  // Formation hint: config-plane calls (dcdo.*/mgr.*) are the latency-
  // sensitive minority — under the adaptive formation policy they must not
  // sit out a coalescing window behind data-plane traffic.
  const sim::SimNetwork::SendClass send_class =
      config_plane ? sim::SimNetwork::SendClass::kUrgent
                   : sim::SimNetwork::SendClass::kNormal;

  // The send span covers marshaling and the hand-off to the network; the
  // net.xfer span begun inside network_.Send nests under it via the scope
  // stack. Its id travels in the InFlight block so the server-side dispatch
  // span can name it as parent — the cross-node causal edge.
  std::uint64_t send_span = 0;
  if (auto* tr = trace::ActiveContext()) {
    send_span = tr->BeginSpan(
        "rpc.send", {.category = "transport",
                     .node = static_cast<std::uint32_t>(from_node),
                     .call_id = invocation.call_id});
    tr->PushScope(send_span);
  }

  // Sender-side marshaling happens before the message hits the wire.
  simulation.AdvanceInline(
      cost.rpc_marshal_per_call +
      sim::SimDuration::Seconds(static_cast<double>(invocation.args().size()) /
                                cost.marshal_bytes_per_sec));

  std::size_t wire_bytes = invocation.WireSize();
  // Return the block to the pool if a member's move constructor throws
  // (mirrors the spill path in MoveFunction).
  void* block = common::PoolAllocate<sizeof(InFlight)>();
  InFlightPtr call;
  try {
    call = InFlightPtr(::new (block) InFlight{this, from_node, to_node, to_pid,
                                              std::move(invocation),
                                              std::move(on_reply)});
  } catch (...) {
    common::PoolFree<sizeof(InFlight)>(block);
    if (auto* tr = trace::ActiveContext()) {
      tr->PopScope();
      tr->EndSpan(send_span, "outcome", "marshal-failed");
    }
    throw;
  }
  call->send_span = send_span;
  call->reply_affinity = reply_affinity;
  network_.Send(
      from_node, to_node, wire_bytes,
      [this, call = std::move(call)]() mutable {
        auto it = endpoints_.find({call->to_node, call->to_pid});
        if (it == endpoints_.end()) {
          // Dead process: the invocation vanishes; caller's timeout fires.
          DCDO_LOG(kDebug) << "rpc: no endpoint at node " << call->to_node
                           << "/pid " << call->to_pid << " for "
                           << call->invocation.method_name();
          return;
        }
        if (call->invocation.expected_epoch != 0 &&
            it->second.epoch != call->invocation.expected_epoch) {
          // Same (node, pid) reused by a newer activation: the old-epoch
          // invocation is silently discarded, exactly like a message to a
          // dead address.
          epoch_rejections_.Increment();
          DCDO_TRACE_HOOK(metrics()
                              .GetCounter("rpc.epoch_rejections")
                              .Increment());
          DCDO_LOG(kDebug) << "rpc: epoch mismatch at node " << call->to_node
                           << " for " << call->invocation.method_name();
          return;
        }

        // At-most-once: consult the endpoint's dedup window before the
        // handler sees anything. Past the epoch check, (origin, call_id)
        // uniquely names a logical call at this activation. Every delivery —
        // keyed or not — retires expired entries first, so an endpoint that
        // only ever sees call_id-0 traffic still bounds its window.
        const std::uint64_t call_id = call->invocation.call_id;
        DedupWindow& window = *it->second.dedup;
        const sim::SimTime now = network_.simulation().Now();
        if (std::size_t purged = window.PurgeExpired(now); purged != 0) {
          dedup_evictions_.Increment(purged);
          DCDO_TRACE_HOOK(metrics()
                              .GetCounter("rpc.dedup_evictions")
                              .Increment(purged));
        }
        if (call->invocation.session_id != 0) {
          // Sessioned call: the slot table decides, the window never sees
          // it. Per-slot state never expires, so a retry landing arbitrarily
          // late — after any number of lease rebinds — still dedups.
          ServerSessionTable::Decision decision = it->second.sessions->Admit(
              call->from_node, call->invocation.session_id,
              call->invocation.session_slot, call->invocation.session_seq);
          switch (decision.disposition) {
            case ServerSessionTable::Disposition::kDropStale:
              // Older seq than the slot's current occupant: provably a ghost
              // of a call the client already abandoned. Its answer can no
              // longer matter, so drop without replying.
              session_stale_drops_.Increment();
              DCDO_TRACE_HOOK(
                  metrics().GetCounter("rpc.session_stale").Increment());
              DCDO_LOG(kDebug)
                  << "rpc: stale session delivery for call " << call_id
                  << " from node " << call->from_node << " dropped";
              return;
            case ServerSessionTable::Disposition::kDropInFlight:
              // The original attempt is still executing; its answer will
              // reach the client. Same reasoning as the window's in-flight
              // drop.
              session_hits_.Increment();
              DCDO_TRACE_HOOK(
                  metrics().GetCounter("rpc.session_hits").Increment());
              DCDO_LOG(kDebug)
                  << "rpc: duplicate of in-flight sessioned call " << call_id
                  << " from node " << call->from_node << " dropped";
              return;
            case ServerSessionTable::Disposition::kReplayReply: {
              // Executed before — replay the slot's cached reply without
              // re-running the body, charging only the dispatch cost.
              session_hits_.Increment();
              if (auto* tr = trace::ActiveContext()) {
                tr->metrics().GetCounter("rpc.session_hits").Increment();
                tr->Instant("rpc.session_replay",
                            {.category = "server",
                             .parent = call->send_span,
                             .node = static_cast<std::uint32_t>(call->to_node),
                             .call_id = call_id});
              }
              network_.simulation().AdvanceInline(cost_model().rpc_dispatch);
              MethodResult replay = *decision.reply;
              const sim::NodeId to_node = call->to_node;
              const sim::NodeId from_node = call->from_node;
              const std::uint32_t reply_affinity = call->reply_affinity;
              std::size_t reply_bytes = replay.WireSize();
              network_.Send(
                  to_node, from_node, reply_bytes,
                  [call = std::move(call),
                   replay = std::move(replay)]() mutable {
                    call->on_reply(std::move(replay));
                  },
                  reply_affinity);
              return;
            }
            case ServerSessionTable::Disposition::kExecute:
              // New seq on this slot: run the body; the reply functor below
              // records the answer in the slot via Complete.
              call->sessions = it->second.sessions;
              break;
          }
        } else if (call_id != 0) {
          DedupWindow::Key key{call->from_node, call_id};
          if (DedupWindow::Entry* seen = window.Find(key)) {
            dedup_hits_.Increment();
            if (auto* tr = trace::ActiveContext()) {
              tr->metrics().GetCounter("rpc.dedup_hits").Increment();
              tr->Instant("rpc.dedup",
                          {.category = "server",
                           .parent = call->send_span,
                           .node = static_cast<std::uint32_t>(call->to_node),
                           .call_id = call_id});
            }
            if (!seen->completed) {
              // The original attempt is still executing (the handler parked
              // its reply); its answer will reach the client. Dropping the
              // duplicate here is what makes the method body run once.
              DCDO_LOG(kDebug)
                  << "rpc: duplicate of in-flight call " << call_id
                  << " from node " << call->from_node << " dropped";
              return;
            }
            // The original already answered — replay the cached reply
            // without re-running the body. Charge the dispatch cost (the
            // server did look the call up) and ship the copy back.
            network_.simulation().AdvanceInline(cost_model().rpc_dispatch);
            MethodResult replay = seen->reply;
            const sim::NodeId to_node = call->to_node;
            const sim::NodeId from_node = call->from_node;
            const std::uint32_t reply_affinity = call->reply_affinity;
            std::size_t reply_bytes = replay.WireSize();
            network_.Send(
                to_node, from_node, reply_bytes,
                [call = std::move(call),
                 replay = std::move(replay)]() mutable {
                  call->on_reply(std::move(replay));
                },
                reply_affinity);
            return;
          }
          if (std::size_t evicted = window.EnforceCapacity(
                  cost_model().dedup_window_max_entries);
              evicted != 0) {
            dedup_capacity_evictions_.Increment(evicted);
            DCDO_TRACE_HOOK(metrics()
                                .GetCounter("rpc.dedup_capacity_evictions")
                                .Increment(evicted));
          }
          window.Insert(key, now + DedupTtl(cost_model()));
          call->window = it->second.dedup;
        }  // call_id 0: a hand-rolled invocation; bypasses the window.

        invocations_delivered_.Increment();
        network_.simulation().AdvanceInline(cost_model().rpc_dispatch);
        std::uint64_t dispatch_span = 0;
        auto* tr = trace::ActiveContext();
        if (tr != nullptr) {
          dispatch_span = tr->BeginSpan(
              "rpc.dispatch",
              {.category = "server",
               .parent = call->send_span,
               .node = static_cast<std::uint32_t>(call->to_node),
               .call_id = call_id});
          tr->Annotate(dispatch_span, "method",
                       call->invocation.method_name());
          call->dispatch_span = dispatch_span;
          // Handler-internal spans (dfm.call, nested outcalls) nest here.
          tr->PushScope(dispatch_span);
        }
        // Hand the handler a reference into the block and move the block
        // itself into the reply functor; the reference stays valid for as
        // long as the handler keeps the functor alive (the documented
        // contract), and the reply travels back over the network to the
        // caller when the handler fires it.
        const MethodInvocation& invocation = call->invocation;
        ReplyFn wire_reply = [call =
                                  std::move(call)](MethodResult result) mutable {
          if (call->sessions != nullptr) {
            // Park the answer in the slot for replay — Complete itself
            // guards against the slot having moved on to a successor call.
            call->sessions->Complete(call->from_node,
                                     call->invocation.session_id,
                                     call->invocation.session_slot,
                                     call->invocation.session_seq, result);
          } else if (call->window != nullptr) {
            // Record the outcome for replay — even if the reply message is
            // about to be lost on the wire, the *execution* happened, and a
            // retry must get this answer instead of a second execution.
            if (DedupWindow::Entry* entry = call->window->Find(
                    {call->from_node, call->invocation.call_id})) {
              entry->completed = true;
              entry->reply = result;
            }
          }
          if (auto* tr2 = trace::ActiveContext()) {
            tr2->EndSpan(call->dispatch_span, "status",
                         result.status.ok() ? "ok" : result.status.ToString());
          }
          RpcTransport* transport = call->transport;
          const sim::NodeId to_node = call->to_node;
          const sim::NodeId from_node = call->from_node;
          const std::uint32_t reply_affinity = call->reply_affinity;
          std::size_t reply_bytes = result.WireSize();
          transport->network_.Send(
              to_node, from_node, reply_bytes,
              [call = std::move(call), result = std::move(result)]() mutable {
                call->on_reply(std::move(result));
              },
              reply_affinity);
        };
        it->second.handler(invocation, std::move(wire_reply));
        if (tr != nullptr) tr->PopScope();
      },
      dispatch_affinity, send_class);
  if (auto* tr = trace::ActiveContext()) {
    tr->PopScope();
    tr->EndSpan(send_span);
  }
}

}  // namespace dcdo::rpc
