// RpcTransport: delivers invocations to object activations.
//
// Each active object registers an endpoint keyed by (node, pid) with its
// current activation epoch. Delivery semantics mirror a real deployment:
//   * destination process gone, or epoch mismatch  ->  the message vanishes
//     (no ICMP-style bounce); the *caller's timeout* detects the failure.
//   * otherwise the handler runs after the dispatch cost and replies
//     asynchronously (an object may park a call while it makes an outcall —
//     the situation behind the paper's disappearing-function problems).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "common/move_function.h"
#include "common/status.h"
#include "rpc/message.h"
#include "sim/host.h"
#include "sim/network.h"

namespace dcdo::rpc {

// Called by a handler to send its reply (may be deferred). Move-only: reply
// closures own the caller's continuation, which is never copied. The buffer
// fits the client's completion closure (this + call state) inline.
using ReplyFn = common::MoveFunction<void(MethodResult), 32>;
// Installed per activation; services one invocation. The MethodInvocation
// reference stays valid for as long as the handler keeps the ReplyFn alive
// (the functor owns the in-flight call record backing both) — a handler
// that parks the reply for a deferred answer may keep reading the
// invocation, but must not touch it after destroying the functor.
using Handler = std::function<void(const MethodInvocation&, ReplyFn)>;

class RpcTransport {
 public:
  explicit RpcTransport(sim::SimNetwork* network) : network_(*network) {}

  // Registers the activation of an object at (node, pid) with `epoch`.
  // Replaces any previous endpoint at that key.
  void RegisterEndpoint(sim::NodeId node, sim::ProcessId pid,
                        std::uint64_t epoch, Handler handler);

  // Removes the endpoint; subsequent deliveries to (node, pid) vanish.
  void UnregisterEndpoint(sim::NodeId node, sim::ProcessId pid);

  bool EndpointAlive(sim::NodeId node, sim::ProcessId pid) const {
    return endpoints_.contains({node, pid});
  }

  // The epoch registered at (node, pid); 0 if no endpoint is there. Lets the
  // checking layer decide whether a cached (node, pid, epoch) binding is
  // live, stale-by-epoch, or pointing at nothing.
  std::uint64_t EndpointEpoch(sim::NodeId node, sim::ProcessId pid) const {
    auto it = endpoints_.find({node, pid});
    return it == endpoints_.end() ? 0 : it->second.epoch;
  }

  // Sends `invocation` from `from_node` to the endpoint at (to_node, to_pid).
  // `on_reply` runs back at the caller's node when the reply lands; it never
  // runs if the call is lost — callers arm their own timeout.
  void Invoke(sim::NodeId from_node, sim::NodeId to_node, sim::ProcessId to_pid,
              MethodInvocation invocation, ReplyFn on_reply);

  sim::SimNetwork& network() { return network_; }
  sim::Simulation& simulation() { return network_.simulation(); }
  const sim::CostModel& cost_model() const { return network_.cost_model(); }

  std::uint64_t invocations_delivered() const {
    return invocations_delivered_;
  }
  std::uint64_t epoch_rejections() const { return epoch_rejections_; }

 private:
  struct Endpoint {
    std::uint64_t epoch;
    Handler handler;
  };
  struct EndpointKeyHash {
    std::size_t operator()(
        const std::pair<sim::NodeId, sim::ProcessId>& key) const noexcept {
      std::uint64_t mixed = (static_cast<std::uint64_t>(key.first) << 32) ^
                            static_cast<std::uint64_t>(key.second);
      return std::hash<std::uint64_t>{}(mixed);
    }
  };

  sim::SimNetwork& network_;
  std::unordered_map<std::pair<sim::NodeId, sim::ProcessId>, Endpoint,
                     EndpointKeyHash>
      endpoints_;
  std::uint64_t invocations_delivered_ = 0;
  std::uint64_t epoch_rejections_ = 0;
};

}  // namespace dcdo::rpc
