// RpcTransport: delivers invocations to object activations.
//
// Each active object registers an endpoint keyed by (node, pid) with its
// current activation epoch. Delivery semantics mirror a real deployment:
//   * destination process gone, or epoch mismatch  ->  the message vanishes
//     (no ICMP-style bounce); the *caller's timeout* detects the failure.
//   * otherwise the handler runs after the dispatch cost and replies
//     asynchronously (an object may park a call while it makes an outcall —
//     the situation behind the paper's disappearing-function problems).
//
// At-most-once dispatch: each endpoint keeps a dedup window keyed by
// (origin node, call_id). A client timeout does not mean the attempt was
// lost — a slow first attempt plus its retry can BOTH arrive, and without
// dedup both execute the method body (disastrous for non-idempotent
// dcdo.*/mgr.* configuration calls). The window drops a duplicate whose
// original is still executing and replays the cached reply for one whose
// original already answered; entries retire after
// CostModel::DedupWindowTtl() — a full timeout past the last instant the
// client protocol can still send a retry, including the bounded lease-rebind
// extension (see DESIGN.md §9, §15.2). call_id 0 (a hand-rolled invocation
// that never set one) bypasses the window.
//
// Sessioned traffic (invocation.session_id != 0; see src/rpc/session.h)
// bypasses the window entirely: the endpoint's ServerSessionTable gives
// exactly-once from per-slot (last seq, cached reply) state that never
// expires, in O(slots) memory (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/move_function.h"
#include "common/status.h"
#include "rpc/message.h"
#include "sim/host.h"
#include "sim/network.h"
#include "trace/metrics.h"

namespace dcdo::rpc {

class DedupWindow;  // transport.cc; per-endpoint at-most-once state
class ServerSessionTable;  // session.h; per-endpoint exactly-once slot state

// Called by a handler to send its reply (may be deferred). Move-only: reply
// closures own the caller's continuation, which is never copied. The buffer
// fits the client's completion closure (this + call state) inline.
using ReplyFn = common::MoveFunction<void(MethodResult), 32>;
// Installed per activation; services one invocation. The MethodInvocation
// reference stays valid for as long as the handler keeps the ReplyFn alive
// (the functor owns the in-flight call record backing both) — a handler
// that parks the reply for a deferred answer may keep reading the
// invocation, but must not touch it after destroying the functor.
using Handler = std::function<void(const MethodInvocation&, ReplyFn)>;

// Where an endpoint's handler may run under the parallel executor
// (DESIGN.md §14). kSerialized endpoints dispatch in the global locality —
// required for handlers that touch cross-host state (the manager, class
// objects, anything driving reconfiguration). kParallel endpoints dispatch
// on the locality owning the destination node; only handlers whose state is
// confined to that node qualify (Dcdo application dispatch). Config-plane
// methods (dcdo.*/mgr.*) are forced to the global locality even on a
// kParallel endpoint. Single-threaded runs ignore the distinction beyond
// recording the affinity tag (which keeps determinism digests comparable
// across modes).
enum class EndpointConcurrency { kSerialized, kParallel };

class RpcTransport {
 public:
  explicit RpcTransport(sim::SimNetwork* network) : network_(*network) {}

  // Registers the activation of an object at (node, pid) with `epoch`.
  // Replaces any previous endpoint at that key.
  void RegisterEndpoint(
      sim::NodeId node, sim::ProcessId pid, std::uint64_t epoch,
      Handler handler,
      EndpointConcurrency concurrency = EndpointConcurrency::kSerialized);

  // Removes the endpoint; subsequent deliveries to (node, pid) vanish.
  void UnregisterEndpoint(sim::NodeId node, sim::ProcessId pid);

  bool EndpointAlive(sim::NodeId node, sim::ProcessId pid) const {
    return endpoints_.contains({node, pid});
  }

  // The epoch registered at (node, pid); 0 if no endpoint is there. Lets the
  // checking layer decide whether a cached (node, pid, epoch) binding is
  // live, stale-by-epoch, or pointing at nothing.
  std::uint64_t EndpointEpoch(sim::NodeId node, sim::ProcessId pid) const {
    auto it = endpoints_.find({node, pid});
    return it == endpoints_.end() ? 0 : it->second.epoch;
  }

  // Sends `invocation` from `from_node` to the endpoint at (to_node, to_pid).
  // `on_reply` runs back at the caller's node when the reply lands; it never
  // runs if the call is lost — callers arm their own timeout.
  void Invoke(sim::NodeId from_node, sim::NodeId to_node, sim::ProcessId to_pid,
              MethodInvocation invocation, ReplyFn on_reply);

  sim::SimNetwork& network() { return network_; }
  sim::Simulation& simulation() { return network_.simulation(); }
  const sim::CostModel& cost_model() const { return network_.cost_model(); }

  // Invocations handed to a handler (duplicates suppressed by the dedup
  // window are NOT counted here — the method body never ran again).
  std::uint64_t invocations_delivered() const {
    return invocations_delivered_.value();
  }
  std::uint64_t epoch_rejections() const { return epoch_rejections_.value(); }
  // Duplicate deliveries absorbed by the window (in-flight drops + replays)
  // and window entries retired by the TTL sweep.
  std::uint64_t dedup_hits() const { return dedup_hits_.value(); }
  std::uint64_t dedup_evictions() const { return dedup_evictions_.value(); }
  // Window entries evicted by the dedup_window_max_entries capacity cap —
  // distinct from TTL retirement: a capacity eviction can forget an answer
  // early, so a non-zero count flags an undersized window.
  std::uint64_t dedup_capacity_evictions() const {
    return dedup_capacity_evictions_.value();
  }
  // Session-path duplicates absorbed (in-flight drops + cached-reply
  // replays) and provably-stale deliveries dropped (older seq than the
  // slot's current occupant — a ghost of an abandoned call).
  std::uint64_t session_hits() const { return session_hits_.value(); }
  std::uint64_t session_stale_drops() const {
    return session_stale_drops_.value();
  }

  // The endpoint's session table (null if the endpoint is gone) — tests pin
  // the O(slots) memory bound through this.
  const ServerSessionTable* EndpointSessions(sim::NodeId node,
                                             sim::ProcessId pid) const {
    auto it = endpoints_.find({node, pid});
    return it == endpoints_.end() ? nullptr : it->second.sessions.get();
  }

 private:
  // Purges expired dedup entries from every endpoint's window; called on
  // each RegisterEndpoint so idle endpoints shed their cached replies.
  void SweepDedupWindows();

  struct Endpoint {
    std::uint64_t epoch;
    Handler handler;
    // Shared with in-flight reply functors, so a reply that completes after
    // the activation re-registered still lands in *its* window (harmlessly
    // orphaned) instead of poisoning the successor's.
    std::shared_ptr<DedupWindow> dedup;
    // Same sharing discipline for session slot state: per activation, so
    // re-registration resets it (the epoch check already fences cross-epoch
    // deliveries).
    std::shared_ptr<ServerSessionTable> sessions;
    EndpointConcurrency concurrency = EndpointConcurrency::kSerialized;
  };
  struct EndpointKeyHash {
    std::size_t operator()(
        const std::pair<sim::NodeId, sim::ProcessId>& key) const noexcept {
      std::uint64_t mixed = (static_cast<std::uint64_t>(key.first) << 32) ^
                            static_cast<std::uint64_t>(key.second);
      return std::hash<std::uint64_t>{}(mixed);
    }
  };

  sim::SimNetwork& network_;
  std::unordered_map<std::pair<sim::NodeId, sim::ProcessId>, Endpoint,
                     EndpointKeyHash>
      endpoints_;
  // Sharded: bumped from worker localities on every parallel dispatch.
  trace::ShardedCounter invocations_delivered_;
  trace::ShardedCounter epoch_rejections_;
  trace::ShardedCounter dedup_hits_;
  trace::ShardedCounter dedup_evictions_;
  trace::ShardedCounter dedup_capacity_evictions_;
  trace::ShardedCounter session_hits_;
  trace::ShardedCounter session_stale_drops_;
};

}  // namespace dcdo::rpc
