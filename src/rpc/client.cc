#include "rpc/client.h"

#include <optional>
#include <utility>

#include "common/logging.h"

namespace dcdo::rpc {

struct RpcClient::CallState {
  ObjectId target;
  std::string method;
  ByteBuffer args;
  Callback done;
  ObjectAddress address;
  int attempts_this_binding = 0;
  bool refreshed = false;
  bool finished = false;
  std::uint64_t call_id = 0;
  std::uint64_t timer_id = 0;
};

void RpcClient::Invoke(const ObjectId& target, std::string method,
                       ByteBuffer args, Callback done) {
  ++calls_started_;
  auto call = std::make_shared<CallState>();
  call->target = target;
  call->method = std::move(method);
  call->args = std::move(args);
  call->done = std::move(done);
  call->call_id = next_call_id_++;

  Result<ObjectAddress> address = cache_.Resolve(target);
  if (!address.ok()) {
    call->done(address.status());
    return;
  }
  call->address = *address;
  Attempt(call);
}

void RpcClient::Attempt(const std::shared_ptr<CallState>& call) {
  sim::Simulation& simulation = transport_.simulation();
  ++call->attempts_this_binding;

  MethodInvocation invocation;
  invocation.target = call->target;
  invocation.method = call->method;
  invocation.args = call->args;
  invocation.expected_epoch = call->address.epoch;
  invocation.call_id = call->call_id;

  // Arm the timeout before sending; the reply cancels it.
  call->timer_id = simulation.Schedule(
      transport_.cost_model().invocation_timeout,
      [this, call]() { OnTimeout(call); });

  transport_.Invoke(
      node_, call->address.node, call->address.pid, std::move(invocation),
      [this, call](MethodResult result) {
        if (call->finished) return;  // a late reply after we gave up
        call->finished = true;
        transport_.simulation().Cancel(call->timer_id);
        if (result.status.ok()) {
          call->done(std::move(result.payload));
        } else {
          call->done(std::move(result.status));
        }
      });
}

void RpcClient::OnTimeout(const std::shared_ptr<CallState>& call) {
  if (call->finished) return;
  ++timeouts_;
  const sim::CostModel& cost = transport_.cost_model();

  if (call->attempts_this_binding <= cost.stale_retry_count) {
    DCDO_LOG(kDebug) << "rpc: timeout on " << call->method << ", retry "
                     << call->attempts_this_binding;
    Attempt(call);
    return;
  }

  if (!call->refreshed) {
    // All retries on the cached binding went unanswered: declare it stale
    // and consult the binding agent (paying the rebind query cost).
    call->refreshed = true;
    call->attempts_this_binding = 0;
    ++rebinds_;
    sim::Simulation& simulation = transport_.simulation();
    simulation.Schedule(cost.rebind_query, [this, call]() {
      if (call->finished) return;
      Result<ObjectAddress> fresh = cache_.RefreshFromAgent(call->target);
      if (!fresh.ok()) {
        call->finished = true;
        call->done(UnavailableError("object " + call->target.ToString() +
                                    " has no current binding"));
        return;
      }
      DCDO_LOG(kDebug) << "rpc: rebound " << call->target << " to "
                       << fresh->ToString();
      call->address = *fresh;
      Attempt(call);
    });
    return;
  }

  call->finished = true;
  call->done(TimeoutError("invocation of " + call->method + " on " +
                          call->target.ToString() +
                          " timed out after rebind"));
}

Result<ByteBuffer> RpcClient::InvokeBlocking(const ObjectId& target,
                                             std::string method,
                                             ByteBuffer args) {
  std::optional<Result<ByteBuffer>> out;
  Invoke(target, std::move(method), std::move(args),
         [&out](Result<ByteBuffer> result) { out.emplace(std::move(result)); });
  transport_.simulation().RunWhile([&out]() { return !out.has_value(); });
  if (!out.has_value()) {
    return InternalError("simulation drained before the reply arrived");
  }
  return std::move(*out);
}

}  // namespace dcdo::rpc
