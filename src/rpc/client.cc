#include "rpc/client.h"

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/pool_allocator.h"

namespace dcdo::rpc {

struct RpcClient::CallState {
  ObjectId target;
  std::string method;    // slow path; empty when shipping by id
  FunctionId method_id;  // fast path; Invalid() when shipping by name
  std::shared_ptr<const ByteBuffer> args;  // shared by all attempts; may be null
  Callback done;
  ObjectAddress address;
  int attempts_this_binding = 0;
  bool refreshed = false;
  bool finished = false;
  std::uint64_t call_id = 0;
  std::uint64_t timer_id = 0;

  std::string_view method_name() const {
    if (!method.empty()) return method;
    if (method_id.valid()) return FunctionNameTable::Global().NameOf(method_id);
    return {};
  }
};

std::shared_ptr<RpcClient::CallState> RpcClient::AcquireCallState() {
  // allocate_shared puts the control block and the CallState in one node,
  // and the pool allocator recycles that node call-to-call — a finished
  // call's block is always the right size for the next Acquire, so the
  // steady state allocates nothing.
  return std::allocate_shared<CallState>(common::PoolAllocator<CallState>{});
}

void RpcClient::Invoke(const ObjectId& target, std::string method,
                       ByteBuffer args, Callback done) {
  std::shared_ptr<CallState> call = AcquireCallState();
  call->target = target;
  // Ship by id when the name is already interned somewhere in this process —
  // except configuration methods, which the configurable-object layer
  // dispatches by name before any method table sees them. The memoized last
  // resolution short-circuits the common same-method-again case; negative
  // results are never memoized (the name could be interned later).
  FunctionId id = FunctionId::Invalid();
  if (method == last_method_) {
    id = last_method_id_;
  } else if (!IsConfigMethodName(method)) {
    id = FunctionNameTable::Global().Find(method);
    if (id.valid()) {
      last_method_ = method;
      last_method_id_ = id;
    }
  }
  if (id.valid()) {
    call->method_id = id;
  } else {
    call->method = std::move(method);
  }
  if (!args.empty()) {
    // Pooled for the same reason as the call state: one shared-args node per
    // call, identical size every time.
    call->args = std::allocate_shared<const ByteBuffer>(
        common::PoolAllocator<ByteBuffer>{}, std::move(args));
  }
  call->done = std::move(done);
  StartCall(call);
}

void RpcClient::Invoke(const ObjectId& target, FunctionId method,
                       std::shared_ptr<const ByteBuffer> args, Callback done) {
  std::shared_ptr<CallState> call = AcquireCallState();
  call->target = target;
  call->method_id = method;
  call->args = std::move(args);
  call->done = std::move(done);
  StartCall(call);
}

void RpcClient::StartCall(const std::shared_ptr<CallState>& call) {
  ++calls_started_;
  call->call_id = next_call_id_++;
  Result<ObjectAddress> address = cache_.Resolve(call->target);
  if (!address.ok()) {
    call->done(address.status());
    return;
  }
  call->address = *address;
  Attempt(call);
}

void RpcClient::Attempt(const std::shared_ptr<CallState>& call) {
  sim::Simulation& simulation = transport_.simulation();
  ++call->attempts_this_binding;

  MethodInvocation invocation;
  invocation.target = call->target;
  if (call->method_id.valid()) {
    invocation.SetMethodId(call->method_id);
  } else {
    invocation.method = call->method;
  }
  if (call->args) invocation.SetSharedArgs(call->args);
  invocation.expected_epoch = call->address.epoch;
  invocation.call_id = call->call_id;

  // Arm the timeout before sending; the reply cancels it. The timer lands in
  // the simulator's timing wheel, so the overwhelmingly common arm-then-
  // cancel round trip is two O(1) operations with immediate reclamation.
  call->timer_id = simulation.Schedule(
      transport_.cost_model().invocation_timeout,
      [this, call]() { OnTimeout(call); });

  transport_.Invoke(
      node_, call->address.node, call->address.pid, std::move(invocation),
      [this, call](MethodResult result) {
        if (call->finished) return;  // a late reply after we gave up
        call->finished = true;
        transport_.simulation().Cancel(call->timer_id);
        if (result.status.ok()) {
          call->done(std::move(result.payload));
        } else {
          call->done(std::move(result.status));
        }
      });
}

void RpcClient::OnTimeout(const std::shared_ptr<CallState>& call) {
  if (call->finished) return;
  ++timeouts_;
  const sim::CostModel& cost = transport_.cost_model();

  if (call->attempts_this_binding <= cost.stale_retry_count) {
    DCDO_LOG(kDebug) << "rpc: timeout on " << call->method_name() << ", retry "
                     << call->attempts_this_binding;
    Attempt(call);
    return;
  }

  if (!call->refreshed) {
    // All retries on the cached binding went unanswered: declare it stale
    // and consult the binding agent (paying the rebind query cost).
    call->refreshed = true;
    call->attempts_this_binding = 0;
    ++rebinds_;
    sim::Simulation& simulation = transport_.simulation();
    simulation.Schedule(cost.rebind_query, [this, call]() {
      if (call->finished) return;
      Result<ObjectAddress> fresh = cache_.RefreshFromAgent(call->target);
      if (!fresh.ok()) {
        call->finished = true;
        call->done(UnavailableError("object " + call->target.ToString() +
                                    " has no current binding"));
        return;
      }
      DCDO_LOG(kDebug) << "rpc: rebound " << call->target << " to "
                       << fresh->ToString();
      call->address = *fresh;
      Attempt(call);
    });
    return;
  }

  call->finished = true;
  call->done(TimeoutError("invocation of " +
                          std::string(call->method_name()) + " on " +
                          call->target.ToString() + " timed out after rebind"));
}

Result<ByteBuffer> RpcClient::DriveToCompletion(
    std::optional<Result<ByteBuffer>>& out) {
  transport_.simulation().RunWhile([&out]() { return !out.has_value(); });
  if (!out.has_value()) {
    return InternalError("simulation drained before the reply arrived");
  }
  return std::move(*out);
}

Result<ByteBuffer> RpcClient::InvokeBlocking(const ObjectId& target,
                                             std::string method,
                                             ByteBuffer args) {
  std::optional<Result<ByteBuffer>> out;
  Invoke(target, std::move(method), std::move(args),
         [&out](Result<ByteBuffer> result) { out.emplace(std::move(result)); });
  return DriveToCompletion(out);
}

Result<ByteBuffer> RpcClient::InvokeBlocking(
    const ObjectId& target, FunctionId method,
    std::shared_ptr<const ByteBuffer> args) {
  std::optional<Result<ByteBuffer>> out;
  Invoke(target, method, std::move(args),
         [&out](Result<ByteBuffer> result) { out.emplace(std::move(result)); });
  return DriveToCompletion(out);
}

}  // namespace dcdo::rpc
