#include "rpc/client.h"

#include <atomic>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/pool_allocator.h"
#include "trace/trace_context.h"

namespace dcdo::rpc {
namespace {

// Process-global call-id allocator. The server's at-most-once window keys on
// (origin node, call_id); a per-client counter would collide the moment two
// clients share a node. Atomic: threaded stress tests drive clients from
// several OS threads.
std::atomic<std::uint64_t> g_next_call_id{1};

// Records the per-method latency histogram name without allocating in the
// common case of short method names.
std::string LatencyMetricName(std::string_view method) {
  std::string name = "rpc.latency.";
  name.append(method);
  return name;
}

}  // namespace

struct RpcClient::CallState {
  ObjectId target;
  std::string method;    // slow path; empty when shipping by id
  FunctionId method_id;  // fast path; Invalid() when shipping by name
  std::shared_ptr<const ByteBuffer> args;  // shared by all attempts; may be null
  Callback done;
  ObjectAddress address;
  int attempts_this_binding = 0;
  // Pushed-rebind rounds consumed (capped at CostModel::lease_rebind_limit;
  // each round restarts the per-binding retry schedule).
  int lease_rebind_rounds = 0;
  // Session state (session_slots > 0 only). `grant` is the slot the current
  // attempt ships under — the entry of `grants` matching `address`. A call
  // holds EVERY slot it ever acquired until it finishes: releasing a slot on
  // rebind would let its seq advance, and a later rebind back to that
  // activation would then send a fresh seq — re-executing a body that
  // already ran there. Bounded by the rebind caps (≤ 2 + lease_rebind_limit
  // activations per call).
  SlotGrant grant;
  std::vector<std::pair<ObjectAddress, SlotGrant>> grants;
  bool refreshed = false;
  bool finished = false;
  std::uint64_t call_id = 0;
  std::uint64_t timer_id = 0;
  // Trace carriage (0 = untraced): the whole-call span, the span of the
  // attempt currently on the wire, and the call's sim start for the
  // per-method latency histogram.
  std::uint64_t span = 0;
  std::uint64_t attempt_span = 0;
  sim::SimTime started_at;

  std::string_view method_name() const {
    if (!method.empty()) return method;
    if (method_id.valid()) return FunctionNameTable::Global().NameOf(method_id);
    return {};
  }
};

std::shared_ptr<RpcClient::CallState> RpcClient::AcquireCallState() {
  // allocate_shared puts the control block and the CallState in one node,
  // and the pool allocator recycles that node call-to-call — a finished
  // call's block is always the right size for the next Acquire, so the
  // steady state allocates nothing.
  return std::allocate_shared<CallState>(common::PoolAllocator<CallState>{});
}

void RpcClient::Invoke(const ObjectId& target, std::string method,
                       ByteBuffer args, Callback done) {
  std::shared_ptr<CallState> call = AcquireCallState();
  call->target = target;
  // Ship by id when the name is already interned somewhere in this process —
  // except configuration methods, which the configurable-object layer
  // dispatches by name before any method table sees them. The memoized last
  // resolution short-circuits the common same-method-again case; negative
  // results are never memoized (the name could be interned later).
  FunctionId id = FunctionId::Invalid();
  if (method == last_method_) {
    id = last_method_id_;
  } else if (!IsConfigMethodName(method)) {
    id = FunctionNameTable::Global().Find(method);
    if (id.valid()) {
      last_method_ = method;
      last_method_id_ = id;
    }
  }
  if (id.valid()) {
    call->method_id = id;
  } else {
    call->method = std::move(method);
  }
  if (!args.empty()) {
    // Pooled for the same reason as the call state: one shared-args node per
    // call, identical size every time.
    call->args = std::allocate_shared<const ByteBuffer>(
        common::PoolAllocator<ByteBuffer>{}, std::move(args));
  }
  call->done = std::move(done);
  StartCall(call);
}

void RpcClient::Invoke(const ObjectId& target, FunctionId method,
                       std::shared_ptr<const ByteBuffer> args, Callback done) {
  std::shared_ptr<CallState> call = AcquireCallState();
  call->target = target;
  call->method_id = method;
  call->args = std::move(args);
  call->done = std::move(done);
  StartCall(call);
}

void RpcClient::StartCall(const std::shared_ptr<CallState>& call) {
  calls_started_.Increment();
  call->call_id = g_next_call_id.fetch_add(1, std::memory_order_relaxed);
  if (auto* tr = trace::ActiveContext()) {
    // The whole-call span, keyed (origin node, call_id). Parent: whatever
    // scope is active — a call issued from inside a server handler (an
    // outcall) nests under that handler's dispatch span.
    call->span = tr->BeginSpan("rpc.call",
                               {.category = "client",
                                .node = static_cast<std::uint32_t>(node_),
                                .call_id = call->call_id});
    tr->Annotate(call->span, "method", call->method_name());
    tr->Annotate(call->span, "target", call->target.ToString());
    tr->metrics().GetCounter("rpc.calls_started").Increment();
    call->started_at = transport_.simulation().Now();
  }
  Result<ObjectAddress> address = cache_.Resolve(call->target);
  if (!address.ok()) {
    DCDO_TRACE_HOOK(EndSpan(call->span, "outcome", "unresolved"));
    call->done(address.status());
    return;
  }
  call->address = *address;
  if (transport_.cost_model().session_slots > 0) {
    AcquireSlot(call);
  } else {
    Attempt(call);
  }
}

void RpcClient::AcquireSlot(const std::shared_ptr<CallState>& call) {
  // Rebinding back to an activation this call already attempted: resend
  // under the SAME (slot, seq), so a body that executed there replays its
  // cached answer instead of running again.
  for (const auto& [addr, grant] : call->grants) {
    if (addr == call->address) {
      call->grant = grant;
      Attempt(call);
      return;
    }
  }
  sessions_.Acquire(
      call->address, [this, call, address = call->address](SlotGrant grant) {
        if (call->finished) {
          // The call died while parked for a slot; the grant must not leak.
          sessions_.Release(address, grant);
          return;
        }
        call->grants.emplace_back(address, grant);
        if (call->address == address) {
          call->grant = grant;
          Attempt(call);
        } else {
          // The call rebound while parked (no path does this today — a
          // parked call has no timer — but the grant bookkeeping must not
          // depend on that): acquire for wherever it points now.
          AcquireSlot(call);
        }
      });
}

void RpcClient::ReleaseSlots(const std::shared_ptr<CallState>& call) {
  call->grant = SlotGrant{};
  // May hand each slot straight to a queued caller, whose first attempt then
  // runs inline here.
  for (auto& [addr, grant] : call->grants) sessions_.Release(addr, grant);
  call->grants.clear();
}

void RpcClient::Attempt(const std::shared_ptr<CallState>& call) {
  sim::Simulation& simulation = transport_.simulation();
  ++call->attempts_this_binding;

  auto* tr = trace::ActiveContext();
  if (tr != nullptr) {
    call->attempt_span =
        tr->BeginSpan("rpc.attempt",
                      {.category = "client",
                       .parent = call->span,
                       .node = static_cast<std::uint32_t>(node_),
                       .call_id = call->call_id,
                       .attempt = call->attempts_this_binding});
    if (call->refreshed) tr->Annotate(call->attempt_span, "binding", "rebound");
  }

  MethodInvocation invocation;
  invocation.target = call->target;
  if (call->method_id.valid()) {
    invocation.SetMethodId(call->method_id);
  } else {
    invocation.method = call->method;
  }
  if (call->args) invocation.SetSharedArgs(call->args);
  invocation.expected_epoch = call->address.epoch;
  invocation.call_id = call->call_id;
  if (call->grant.held()) {
    // Every retry of this call resends identical values — that stability is
    // what the server's per-slot seq comparison keys on.
    invocation.session_id = call->grant.session_id;
    invocation.session_slot = call->grant.slot;
    invocation.session_seq = call->grant.seq;
  }

  // Arm the timeout before sending; the reply cancels it. The timer lands in
  // the simulator's timing wheel, so the overwhelmingly common arm-then-
  // cancel round trip is two O(1) operations with immediate reclamation.
  call->timer_id = simulation.Schedule(
      transport_.cost_model().invocation_timeout,
      [this, call]() { OnTimeout(call); });

  // The attempt span is the scope while the transport marshals and hands the
  // message to the network, so rpc.send / net.xfer nest beneath it. The pop
  // must also run when Invoke throws (the marshal-failure path rethrows) —
  // a leaked scope would parent later spans under a dead attempt.
  if (tr != nullptr) tr->PushScope(call->attempt_span);
  try {
    transport_.Invoke(
        node_, call->address.node, call->address.pid, std::move(invocation),
        [this, call, attempt_span = call->attempt_span](MethodResult result) {
          if (call->finished) return;  // a late reply after we gave up
          call->finished = true;
          transport_.simulation().Cancel(call->timer_id);
          ReleaseSlots(call);
          if (auto* tr2 = trace::ActiveContext()) {
            // attempt_span is captured by value: a late reply from an earlier
            // attempt must close THAT attempt's span (a no-op if OnTimeout
            // already did), never the newer attempt's span that has since
            // overwritten call->attempt_span.
            tr2->EndSpan(attempt_span, "outcome",
                         result.status.ok() ? "reply" : "error");
            if (call->attempt_span != attempt_span) {
              // The newer attempt still on the wire will never get its own
              // answer (the server dedups it); close its span honestly.
              tr2->EndSpan(call->attempt_span, "outcome", "superseded");
            }
            if (call->span != 0) {
              tr2->metrics()
                  .GetHistogram(LatencyMetricName(call->method_name()))
                  .Record(transport_.simulation().Now() - call->started_at);
            }
            tr2->metrics().GetCounter("rpc.replies").Increment();
            tr2->EndSpan(call->span);
          }
          if (result.status.ok()) {
            call->done(std::move(result.payload));
          } else {
            call->done(std::move(result.status));
          }
        });
  } catch (...) {
    if (tr != nullptr) tr->PopScope();
    throw;
  }
  if (tr != nullptr) tr->PopScope();
}

void RpcClient::OnTimeout(const std::shared_ptr<CallState>& call) {
  if (call->finished) return;
  timeouts_.Increment();
  const sim::CostModel& cost = transport_.cost_model();
  if (auto* tr = trace::ActiveContext()) {
    tr->Instant("rpc.timeout", {.category = "client",
                                .parent = call->attempt_span,
                                .node = static_cast<std::uint32_t>(node_),
                                .call_id = call->call_id,
                                .attempt = call->attempts_this_binding});
    tr->EndSpan(call->attempt_span, "outcome", "timeout");
    tr->metrics().GetCounter("rpc.timeouts").Increment();
  }

  if (cost.binding_lease_duration > sim::SimDuration::Zero() &&
      call->lease_rebind_rounds < cost.lease_rebind_limit) {
    // Under leases the directory pushes a rebound object's fresh binding to
    // this cache; if one arrived while the attempt was on the wire, switch
    // to it now instead of probing the dead address through the rest of the
    // timeout schedule. Capped at lease_rebind_limit rounds per call: each
    // switch restarts the retry schedule, and an uncapped call chasing a
    // churning object could retry forever — and land a retry after the
    // server's dedup window retired its entry, re-executing the body. The
    // window's TTL (CostModel::DedupWindowTtl) budgets for exactly this many
    // rounds; a call past the cap falls through to the normal probe schedule
    // and terminal timeout, whose retries the TTL already covers.
    std::optional<ObjectAddress> pushed = cache_.CachedAddress(call->target);
    if (pushed.has_value() && !(*pushed == call->address)) {
      ++call->lease_rebind_rounds;
      lease_rebinds_.Increment();
      DCDO_LOG(kDebug) << "rpc: lease push rebound " << call->target << " to "
                       << pushed->ToString();
      if (auto* tr = trace::ActiveContext()) {
        tr->Instant("rpc.lease_rebind",
                    {.category = "client",
                     .parent = call->span,
                     .node = static_cast<std::uint32_t>(node_),
                     .call_id = call->call_id});
        tr->metrics().GetCounter("rpc.lease_rebinds").Increment();
      }
      // A different address is a different activation, hence a different
      // session. The slot held here is NOT released — a retry may yet land
      // at this activation, and a rebind back must reuse it (AcquireSlot).
      call->grant = SlotGrant{};
      call->address = *pushed;
      call->attempts_this_binding = 0;
      if (cost.session_slots > 0) {
        AcquireSlot(call);
      } else {
        Attempt(call);
      }
      return;
    }
  }

  if (call->attempts_this_binding <= cost.stale_retry_count) {
    DCDO_LOG(kDebug) << "rpc: timeout on " << call->method_name() << ", retry "
                     << call->attempts_this_binding;
    Attempt(call);
    return;
  }

  if (!call->refreshed) {
    // All retries on the cached binding went unanswered: declare it stale
    // and consult the binding agent (paying the rebind query cost).
    call->refreshed = true;
    call->attempts_this_binding = 0;
    rebinds_.Increment();
    std::uint64_t rebind_span = 0;
    if (auto* tr = trace::ActiveContext()) {
      rebind_span =
          tr->BeginSpan("rpc.rebind", {.category = "client",
                                       .parent = call->span,
                                       .node = static_cast<std::uint32_t>(node_),
                                       .call_id = call->call_id});
      tr->metrics().GetCounter("rpc.rebinds").Increment();
    }
    sim::Simulation& simulation = transport_.simulation();
    simulation.Schedule(cost.rebind_query, [this, call, rebind_span]() {
      if (call->finished) return;
      // RefreshFromAgentAsync queues the fetch on the owning directory shard
      // when the lookup-service model is on; otherwise it resolves
      // synchronously (the legacy path) before returning.
      cache_.RefreshFromAgentAsync(
          call->target, [this, call, rebind_span](Result<ObjectAddress> fresh) {
            if (call->finished) return;
            if (!fresh.ok()) {
              call->finished = true;
              ReleaseSlots(call);
              if (auto* tr = trace::ActiveContext()) {
                tr->EndSpan(rebind_span, "outcome", "unbound");
                tr->EndSpan(call->span, "outcome", "unavailable");
              }
              call->done(UnavailableError("object " + call->target.ToString() +
                                          " has no current binding"));
              return;
            }
            DCDO_LOG(kDebug) << "rpc: rebound " << call->target << " to "
                             << fresh->ToString();
            if (auto* tr = trace::ActiveContext()) {
              tr->EndSpan(rebind_span, "address", fresh->ToString());
            }
            if (*fresh == call->address) {
              // Same binding reconfirmed: keep the slot (and seq) we hold.
              Attempt(call);
              return;
            }
            call->grant = SlotGrant{};
            call->address = *fresh;
            if (transport_.cost_model().session_slots > 0) {
              AcquireSlot(call);
            } else {
              Attempt(call);
            }
          });
    });
    return;
  }

  call->finished = true;
  ReleaseSlots(call);
  DCDO_TRACE_HOOK(EndSpan(call->span, "outcome", "timeout"));
  call->done(TimeoutError("invocation of " +
                          std::string(call->method_name()) + " on " +
                          call->target.ToString() + " timed out after rebind"));
}

Result<ByteBuffer> RpcClient::DriveToCompletion(
    std::optional<Result<ByteBuffer>>& out) {
  transport_.simulation().RunWhile([&out]() { return !out.has_value(); });
  if (!out.has_value()) {
    return InternalError("simulation drained before the reply arrived");
  }
  return std::move(*out);
}

Result<ByteBuffer> RpcClient::InvokeBlocking(const ObjectId& target,
                                             std::string method,
                                             ByteBuffer args) {
  std::optional<Result<ByteBuffer>> out;
  Invoke(target, std::move(method), std::move(args),
         [&out](Result<ByteBuffer> result) { out.emplace(std::move(result)); });
  return DriveToCompletion(out);
}

Result<ByteBuffer> RpcClient::InvokeBlocking(
    const ObjectId& target, FunctionId method,
    std::shared_ptr<const ByteBuffer> args) {
  std::optional<Result<ByteBuffer>> out;
  Invoke(target, method, std::move(args),
         [&out](Result<ByteBuffer> result) { out.emplace(std::move(result)); });
  return DriveToCompletion(out);
}

}  // namespace dcdo::rpc
