#include "trace/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <string_view>

namespace dcdo::trace {
namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendString(std::string& out, std::string_view s) {
  out += '"';
  AppendEscaped(out, s);
  out += '"';
}

// Sim nanoseconds -> the microsecond `ts` axis, with sub-µs precision kept.
void AppendMicros(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  out += buf;
}

void AppendEvent(std::string& out, const Span& span, bool& first) {
  if (!first) out += ",\n";
  first = false;
  const bool instant = span.kind == Span::Kind::kInstant;
  out += "  {\"name\": ";
  AppendString(out, span.name);
  out += ", \"cat\": ";
  AppendString(out, span.category.empty() ? std::string_view("dcdo")
                                          : std::string_view(span.category));
  out += instant ? ", \"ph\": \"i\", \"s\": \"t\"" : ", \"ph\": \"X\"";
  out += ", \"ts\": ";
  AppendMicros(out, span.sim_begin_ns);
  if (!instant) {
    // A span the run never closed exports with zero duration; its "open"
    // note below says why.
    std::int64_t dur =
        span.sim_end_ns >= span.sim_begin_ns ? span.sim_end_ns - span.sim_begin_ns : 0;
    out += ", \"dur\": ";
    AppendMicros(out, dur);
  }
  out += ", \"pid\": " + std::to_string(span.node);
  out += ", \"tid\": ";
  AppendString(out, span.category.empty() ? std::string_view("dcdo")
                                          : std::string_view(span.category));
  out += ", \"args\": {";
  out += "\"span\": " + std::to_string(span.id);
  out += ", \"parent\": " + std::to_string(span.parent);
  out += ", \"root\": " + std::to_string(span.root);
  if (span.call_id != 0) {
    out += ", \"call_id\": " + std::to_string(span.call_id);
  }
  if (span.attempt != 0) {
    out += ", \"attempt\": " + std::to_string(span.attempt);
  }
  out += ", \"wall_ns\": " + std::to_string(span.wall_begin_ns);
  if (!instant && span.sim_end_ns < span.sim_begin_ns) {
    out += ", \"open\": true";
  }
  for (const auto& [key, value] : span.notes) {
    out += ", ";
    AppendString(out, key);
    out += ": ";
    AppendString(out, value);
  }
  out += "}}";
}

void AppendMetrics(std::string& out, const MetricsRegistry& metrics) {
  out += ",\n\"dcdoMetrics\": {\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : metrics.CounterSnapshot()) {
    if (!first) out += ", ";
    first = false;
    AppendString(out, name);
    out += ": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const std::string& name : metrics.HistogramNames()) {
    const Histogram* h = metrics.FindHistogram(name);
    if (h == nullptr) continue;
    if (!first) out += ", ";
    first = false;
    AppendString(out, name);
    out += ": {\"count\": " + std::to_string(h->count());
    out += ", \"sum_ns\": " + std::to_string(h->sum_nanos());
    out += ", \"min_ns\": " + std::to_string(h->min_nanos());
    out += ", \"max_ns\": " + std::to_string(h->max_nanos());
    char mean[48];
    std::snprintf(mean, sizeof(mean), "%.1f", h->mean_nanos());
    out += ", \"mean_ns\": ";
    out += mean;
    out += "}";
  }
  out += "}}";
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<Span>& spans,
                              const MetricsRegistry* metrics) {
  std::string out;
  out.reserve(spans.size() * 200 + 1024);
  out += "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  for (const Span& span : spans) {
    AppendEvent(out, span, first);
  }
  out += "\n]";
  if (metrics != nullptr) {
    AppendMetrics(out, *metrics);
  }
  out += "}\n";
  return out;
}

Status WriteChromeTrace(const TraceContext& ctx, const std::string& path) {
  std::string json = ToChromeTraceJson(ctx.SnapshotSpans(), &ctx.metrics());
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InternalError("cannot open trace output file " + path);
  }
  file << json;
  if (!file.good()) {
    return InternalError("failed writing trace to " + path);
  }
  return Status::Ok();
}

}  // namespace dcdo::trace
