// MetricsRegistry: named counters and sim-time histograms for the tracing
// layer (Section 5's evaluation numbers, machine-readable).
//
// Three pieces:
//   * trace::Counter — a relaxed atomic counter cheap enough to live inside
//     hot-path components. Layers that used to keep ad-hoc `std::uint64_t`
//     statistics (RpcClient, SimNetwork, BindingAgent — whose
//     `lookups_served_` was a mutable non-atomic increment on a const path,
//     i.e. a data race under concurrent lookups) hold these instead; their
//     existing accessors keep working via value().
//   * trace::ShardedCounter — the same interface with one cache-line-padded
//     lane per simulation locality. Under the parallel executor
//     (DESIGN.md §14) every worker thread bumps its own lane, so the hottest
//     counters (network message counts, registry metrics) never bounce a
//     shared cache line between cores; value() folds the lanes at read time.
//     Single-threaded runs touch lane 0 only and behave exactly like Counter.
//   * MetricsRegistry — the canonical name -> counter/histogram store owned
//     by the installed TraceContext. Instrumentation sites bump registry
//     metrics ("rpc.timeouts", "rpc.dedup_hits", "evolve.latency", ...) only
//     when a context is installed and enabled, so the registry costs nothing
//     in untraced runs. Registry counters are sharded: per-locality lanes
//     replace PR 4's single relaxed atomic, and DumpTrace/export reads see
//     the lane-merged totals.
//
// Registered objects have stable addresses for the registry's lifetime, so a
// hot site may look a counter up once and keep the reference.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim_time.h"

namespace dcdo::trace {

// Monotonic (well, usually — in-flight gauges also subtract) event counter.
// Relaxed ordering: statistics, not synchronization.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(std::uint64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// One metrics lane per execution context: lane 0 is the single-threaded
// engine / the parallel coordinator, lanes 1..16 the worker localities.
// Keep in sync with sim::kMaxSimWorkers (parallel_sim.h) — trace sits below
// sim in the layering, so the constant cannot be shared directly.
inline constexpr std::size_t kMetricsLanes = 17;

namespace internal {
inline thread_local std::size_t tl_metrics_lane = 0;
}  // namespace internal

// Binds the calling thread to a metrics lane. Called once per worker thread
// by the parallel executor; everything else stays on lane 0.
inline void SetMetricsLane(std::size_t lane) {
  internal::tl_metrics_lane = lane < kMetricsLanes ? lane : 0;
}
inline std::size_t CurrentMetricsLane() { return internal::tl_metrics_lane; }

// Counter with per-lane cache-line-padded cells. Increments touch only the
// calling thread's lane; reads fold all lanes. Decrement works on the local
// lane too (lanes may go transiently negative in two's complement; the fold
// is exact because the lanes sum modulo 2^64).
class ShardedCounter {
 public:
  void Increment(std::uint64_t n = 1) {
    lanes_[CurrentMetricsLane()].cell.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(std::uint64_t n = 1) {
    lanes_[CurrentMetricsLane()].cell.fetch_sub(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) {
      total += lane.cell.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Lane& lane : lanes_) lane.cell.store(0, std::memory_order_relaxed);
  }
  // Overwrite to an absolute value (snapshot import): zero every lane, park
  // the value in lane 0. Only meaningful while no other thread increments.
  void Set(std::uint64_t value) {
    Reset();
    lanes_[0].cell.store(value, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> cell{0};
  };
  std::array<Lane, kMetricsLanes> lanes_;
};

// Histogram over sim-time durations: exact count/sum/min/max plus log2
// nanosecond buckets (bucket i holds samples with floor(log2(ns)) == i;
// negative or zero samples land in bucket 0). Mutex-guarded — histograms are
// recorded on traced paths only, where a lock is noise next to span capture.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Record(sim::SimDuration d) { RecordNanos(d.nanos()); }
  void RecordNanos(std::int64_t ns);

  std::uint64_t count() const;
  std::int64_t sum_nanos() const;
  std::int64_t min_nanos() const;  // 0 when empty
  std::int64_t max_nanos() const;  // 0 when empty
  double mean_nanos() const;
  // Approximate percentile (p in [0, 100]) from the log2 buckets: walks to
  // the bucket holding the p-th sample and interpolates linearly inside it,
  // clamped to the observed [min, max]. Resolution is the bucket width (a
  // factor of 2), which is plenty for p50/p99 latency reporting — exact
  // quantiles would need per-sample storage. 0 when empty.
  std::int64_t ValueAtPercentile(double p) const;
  // Bucket counts, index = floor(log2(ns)).
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  // Finds or creates; the reference stays valid for the registry's lifetime.
  ShardedCounter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Read-only lookups for tests and export; null when never created.
  const ShardedCounter* FindCounter(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;
  // Convenience: the counter's value, or 0 if it was never created.
  std::uint64_t CounterValue(std::string_view name) const;

  // Overwrites counter `name` with `value` — used to snapshot component-owned
  // counters (network message counts, transport deliveries) into the registry
  // at export time instead of paying a registry lookup per message.
  void SetCounter(std::string_view name, std::uint64_t value);

  std::vector<std::pair<std::string, std::uint64_t>> CounterSnapshot() const;
  std::vector<std::string> HistogramNames() const;

 private:
  mutable std::mutex mutex_;
  // unique_ptr values: node stability is not enough — GetCounter hands out
  // references that must survive rehash-free, and std::map nodes already do;
  // the indirection keeps Counter/Histogram non-movable types storable.
  std::map<std::string, std::unique_ptr<ShardedCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dcdo::trace
