// Chrome-trace (about:tracing / Perfetto) export of a recorded trace.
//
// Spans become complete events (ph "X") and instants become instant events
// (ph "i") on the Trace Event JSON format. Sim time maps onto the `ts`/`dur`
// microsecond axis — the timeline a viewer shows IS the paper's simulated
// timeline. Wall-clock stamps, causal links (parent/root), call ids and
// attempt numbers ride in each event's `args`. Lanes: pid = the simulated
// node, tid = the span category, so one node's client/transport/net/server
// work stacks visually.
//
// Metrics are exported alongside the events under a top-level "dcdoMetrics"
// key (counter values + histogram summaries) — Chrome ignores unknown keys,
// so the file stays loadable while scripts/trace.sh can read the numbers.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/metrics.h"
#include "trace/trace_context.h"

namespace dcdo::trace {

// Renders `spans` (and optionally `metrics`) as a Trace Event JSON object.
std::string ToChromeTraceJson(const std::vector<Span>& spans,
                              const MetricsRegistry* metrics = nullptr);

// Snapshot + render + write to `path`.
[[nodiscard]] Status WriteChromeTrace(const TraceContext& ctx, const std::string& path);

}  // namespace dcdo::trace
