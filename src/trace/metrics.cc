#include "trace/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dcdo::trace {

namespace {
std::size_t BucketFor(std::int64_t ns) {
  if (ns <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(ns)) - 1;
}
}  // namespace

void Histogram::RecordNanos(std::int64_t ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = ns;
    max_ = ns;
  } else {
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }
  ++count_;
  sum_ += ns;
  ++buckets_[BucketFor(ns)];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::int64_t Histogram::sum_nanos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

std::int64_t Histogram::min_nanos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

std::int64_t Histogram::max_nanos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::mean_nanos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t Histogram::ValueAtPercentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the wanted sample (1-based, nearest-rank).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             p / 100.0 * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (seen + buckets_[b] < rank) {
      seen += buckets_[b];
      continue;
    }
    // Interpolate within [2^b, 2^(b+1)) by the rank's position in the bucket.
    // ldexp, not shifts: bucket 62's upper edge (2^63) overflows int64.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
    const double hi = std::ldexp(2.0, static_cast<int>(b));
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(buckets_[b]);
    const auto value = static_cast<std::int64_t>(lo + (hi - lo) * frac);
    return std::clamp(value, min_, max_);
  }
  return max_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::uint64_t>(buckets_, buckets_ + kBuckets);
}

ShardedCounter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<ShardedCounter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

const ShardedCounter* MetricsRegistry::FindCounter(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const ShardedCounter* counter = FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

void MetricsRegistry::SetCounter(std::string_view name, std::uint64_t value) {
  GetCounter(name).Set(value);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace dcdo::trace
