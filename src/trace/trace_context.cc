#include "trace/trace_context.h"

#include <chrono>

#include "sim/simulation.h"

namespace dcdo::trace {
namespace {

// Same single-writer discipline as check::CheckContext: contexts are
// installed by a testbed at construction and uninstalled at destruction;
// concurrent *readers* (instrumentation sites on worker threads in the
// threaded stress tests) see the pointer through an atomic.
std::atomic<TraceContext*> g_current{nullptr};

std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceContext::TraceContext(const Options& options)
    : options_(options),
      enabled_(options.enabled),
      wall_origin_ns_(SteadyNowNanos()) {}

TraceContext::~TraceContext() { Uninstall(); }

TraceContext* TraceContext::Current() {
  return g_current.load(std::memory_order_acquire);
}

void TraceContext::Install() {
  g_current.store(this, std::memory_order_release);
}

void TraceContext::Uninstall() {
  TraceContext* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

void TraceContext::AttachSimulation(sim::Simulation* simulation) {
  simulation_ = simulation;
}

std::int64_t TraceContext::SimNowNanos() const {
  return simulation_ == nullptr ? 0 : simulation_->Now().nanos();
}

std::int64_t TraceContext::WallNowNanos() const {
  return SteadyNowNanos() - wall_origin_ns_;
}

SpanId TraceContext::BeginSpan(std::string_view name, const SpanArgs& args) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return 0;
  }
  SpanId parent = args.parent;
  if (parent == kScopeParent) {
    parent = scope_stack_.empty() ? 0 : scope_stack_.back();
  }
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.root = (parent != 0 && parent <= spans_.size())
                  ? spans_[parent - 1].root
                  : span.id;
  span.name.assign(name);
  span.category.assign(args.category);
  span.node = args.node;
  span.call_id = args.call_id;
  span.attempt = args.attempt;
  span.sim_begin_ns = SimNowNanos();
  span.wall_begin_ns = WallNowNanos();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceContext::EndSpan(SpanId id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.sim_end_ns >= 0) return;  // already closed
  span.sim_end_ns = SimNowNanos();
  span.wall_end_ns = WallNowNanos();
}

void TraceContext::EndSpan(SpanId id, std::string_view key,
                           std::string_view value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id > spans_.size()) return;
  Span& span = spans_[id - 1];
  // Whole call is a no-op on a closed span: a second closer (e.g. a late
  // reply racing the timeout that already ended the attempt) must not
  // append a contradictory outcome note to the recorded one.
  if (span.sim_end_ns >= 0) return;
  span.notes.emplace_back(std::string(key), std::string(value));
  span.sim_end_ns = SimNowNanos();
  span.wall_end_ns = WallNowNanos();
}

void TraceContext::Annotate(SpanId id, std::string_view key,
                            std::string_view value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id > spans_.size()) return;
  spans_[id - 1].notes.emplace_back(std::string(key), std::string(value));
}

SpanId TraceContext::Instant(std::string_view name, const SpanArgs& args) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return 0;
  }
  SpanId parent = args.parent;
  if (parent == kScopeParent) {
    parent = scope_stack_.empty() ? 0 : scope_stack_.back();
  }
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.root = (parent != 0 && parent <= spans_.size())
                  ? spans_[parent - 1].root
                  : span.id;
  span.kind = Span::Kind::kInstant;
  span.name.assign(name);
  span.category.assign(args.category);
  span.node = args.node;
  span.call_id = args.call_id;
  span.attempt = args.attempt;
  span.sim_begin_ns = SimNowNanos();
  span.sim_end_ns = span.sim_begin_ns;
  span.wall_begin_ns = WallNowNanos();
  span.wall_end_ns = span.wall_begin_ns;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceContext::PushScope(SpanId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  scope_stack_.push_back(id);
}

void TraceContext::PopScope() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!scope_stack_.empty()) scope_stack_.pop_back();
}

SpanId TraceContext::CurrentScope() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scope_stack_.empty() ? 0 : scope_stack_.back();
}

std::vector<Span> TraceContext::SnapshotSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t TraceContext::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::uint64_t TraceContext::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

SpanId TraceContext::RootOf(SpanId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return 0;
  return spans_[id - 1].root;
}

}  // namespace dcdo::trace
