// TraceContext: the causal tracing layer of the simulator.
//
// One TraceContext is installed per testbed (process-globally reachable via
// Current(), exactly like check::CheckContext — instrumentation sites deep in
// the stack need no plumbing). Instrumented layers record *spans*: named
// intervals stamped with both sim time (the clock the paper's evaluation
// runs on) and wall time, linked parent -> child so a remote call's full
// causal path is reconstructible:
//
//   rpc.call (client)                       the whole invocation, keyed by
//     rpc.attempt [attempt=1]               (origin node, call_id)
//       rpc.send (transport marshal+hand-off)
//         net.xfer (wire transfer)
//       rpc.dispatch (server, same call_id)
//         dfm.call (DFM acquire+body)
//     rpc.timeout / rpc.rebind / rpc.attempt [attempt=2] ...
//   evolve (begin -> commit/rollback), update.batch (coordinator)
//
// Causality has two carriage mechanisms:
//   * a scope stack for synchronous nesting — SpanScope pushes its span as
//     the default parent for spans begun beneath it on the same "thread" of
//     execution (the simulator is single-threaded per event);
//   * explicit parent ids for asynchronous hops — per-call records
//     (CallState, the transport's InFlight block, evolution continuations)
//     carry the parent span id across scheduling boundaries.
//
// Retry-attempt annotations ride on the spans (attempt=N), and every span
// carries (node, call_id) when call-scoped, so "which attempts belong to one
// logical call" is a trace query, not a log-grovel.
//
// The context also owns the MetricsRegistry (metrics.h) — counters and
// sim-time histograms replacing the ad-hoc statistics of RpcClient /
// SimNetwork / BindingAgent.
//
// Zero cost when disabled: instrumentation sites guard on ActiveContext(),
// which is a compile-time nullptr unless DCDO_TRACE_ENABLED is defined
// (CMake option DCDO_TRACING, on by default) and otherwise a single
// null + flag test; nothing is recorded unless a context is installed and
// enabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/sim_time.h"
#include "trace/metrics.h"

namespace dcdo::sim {
class Simulation;
}  // namespace dcdo::sim

namespace dcdo::trace {

using SpanId = std::uint64_t;  // 0 = "no span"

// Sentinel parent: "whatever SpanScope is innermost on the scope stack".
// Pass an explicit id for asynchronous hops, or 0 to force a causal root.
inline constexpr SpanId kScopeParent = ~static_cast<SpanId>(0);

struct SpanArgs {
  std::string_view category = {};
  SpanId parent = kScopeParent;
  std::uint32_t node = 0;
  std::uint64_t call_id = 0;
  int attempt = 0;
};

struct Span {
  enum class Kind : std::uint8_t { kInterval, kInstant };

  SpanId id = 0;
  SpanId parent = 0;  // 0 for causal roots
  SpanId root = 0;    // the root of this span's causal tree (itself, if root)
  Kind kind = Kind::kInterval;
  std::string name;      // e.g. "rpc.attempt", "net.xfer", "evolve"
  std::string category;  // "client", "transport", "net", "server", "dfm", ...
  std::uint32_t node = 0;     // the node the work happens on (0 = n/a)
  std::uint64_t call_id = 0;  // 0 when not call-scoped
  int attempt = 0;            // retry-attempt annotation (0 = n/a)
  std::int64_t sim_begin_ns = 0;
  std::int64_t sim_end_ns = -1;  // -1 while the span is open
  std::int64_t wall_begin_ns = 0;
  std::int64_t wall_end_ns = -1;
  std::vector<std::pair<std::string, std::string>> notes;

  bool open() const { return kind == Kind::kInterval && sim_end_ns < 0; }
};

class TraceContext {
 public:
  struct Options {
    bool enabled = true;
    // Hard cap on retained spans; beyond it new spans are dropped (counted
    // in dropped_spans()) so a runaway workload cannot eat the heap.
    std::size_t max_spans = 1u << 20;
  };

  TraceContext() : TraceContext(Options{}) {}
  explicit TraceContext(const Options& options);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  // --- global installation (how instrumentation sites find the context) ---

  static TraceContext* Current();
  void Install();    // makes this the process-current context
  void Uninstall();  // clears it, if this is the current one

  // Uses `simulation` as the sim-time source for stamps. Header-only use of
  // Simulation::Now(); the trace library does not link against dcdo_sim.
  void AttachSimulation(sim::Simulation* simulation);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // --- span recording ---

  // Opens a span; returns its id (0 if the span cap dropped it — every other
  // entry point tolerates id 0). Stamps sim + wall begin times.
  SpanId BeginSpan(std::string_view name, const SpanArgs& args = {});
  // Closes the span, stamping end times. No-op for id 0 or a closed span.
  void EndSpan(SpanId id);
  void EndSpan(SpanId id, std::string_view key, std::string_view value);
  // Attaches a key/value note; no-op for id 0.
  void Annotate(SpanId id, std::string_view key, std::string_view value);
  // A zero-duration marker ("rpc.timeout", "net.drop", ...).
  SpanId Instant(std::string_view name, const SpanArgs& args = {});

  // --- the synchronous-nesting scope stack (see SpanScope below) ---

  void PushScope(SpanId id);
  void PopScope();
  SpanId CurrentScope() const;

  // --- queries (tests, export) ---

  std::vector<Span> SnapshotSpans() const;
  std::size_t span_count() const;
  std::uint64_t dropped_spans() const;
  // The span's root id (0 if unknown) — cheap causal-tree lookup.
  SpanId RootOf(SpanId id) const;

 private:
  std::int64_t SimNowNanos() const;
  std::int64_t WallNowNanos() const;

  Options options_;
  std::atomic<bool> enabled_;
  sim::Simulation* simulation_ = nullptr;
  std::int64_t wall_origin_ns_ = 0;

  mutable std::mutex mutex_;
  std::vector<Span> spans_;  // index = id - 1
  std::vector<SpanId> scope_stack_;
  std::uint64_t dropped_ = 0;

  MetricsRegistry metrics_;
};

// The guard instrumentation sites branch on. Compiled out (constant nullptr,
// so the whole `if (auto* tr = ...)` body is dead code) without
// DCDO_TRACE_ENABLED; otherwise one load + two tests.
inline TraceContext* ActiveContext() {
#if defined(DCDO_TRACE_ENABLED)
  TraceContext* ctx = TraceContext::Current();
  return (ctx != nullptr && ctx->enabled()) ? ctx : nullptr;
#else
  return nullptr;
#endif
}

// Statement form for one-shot sites, mirroring DCDO_CHECK_HOOK:
//   DCDO_TRACE_HOOK(metrics().GetCounter("rpc.timeouts").Increment());
#if defined(DCDO_TRACE_ENABLED)
#define DCDO_TRACE_HOOK(call)                                        \
  do {                                                               \
    ::dcdo::trace::TraceContext* dcdo_trace_ctx_ =                   \
        ::dcdo::trace::ActiveContext();                              \
    if (dcdo_trace_ctx_ != nullptr) {                                \
      dcdo_trace_ctx_->call;                                         \
    }                                                                \
  } while (false)
#else
#define DCDO_TRACE_HOOK(call) \
  do {                        \
  } while (false)
#endif

// RAII synchronous span: begins on construction, pushes itself as the
// default parent for spans begun beneath it, pops + ends on destruction.
// A no-op when no context is active. Must not outlive the context.
class SpanScope {
 public:
  explicit SpanScope(std::string_view name, const SpanArgs& args = {}) {
    ctx_ = ActiveContext();
    if (ctx_ != nullptr) {
      id_ = ctx_->BeginSpan(name, args);
      ctx_->PushScope(id_);
    }
  }
  ~SpanScope() {
    if (ctx_ != nullptr) {
      ctx_->PopScope();
      ctx_->EndSpan(id_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  SpanId id() const { return id_; }
  explicit operator bool() const { return ctx_ != nullptr; }
  void Annotate(std::string_view key, std::string_view value) {
    if (ctx_ != nullptr) ctx_->Annotate(id_, key, value);
  }

 private:
  TraceContext* ctx_ = nullptr;
  SpanId id_ = 0;
};

}  // namespace dcdo::trace
