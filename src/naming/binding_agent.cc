#include "naming/binding_agent.h"

#include "trace/trace_context.h"

namespace dcdo {

void BindingAgent::Bind(const ObjectId& id, const ObjectAddress& address) {
  bindings_[id] = address;
}

void BindingAgent::Unbind(const ObjectId& id) { bindings_.erase(id); }

Result<ObjectAddress> BindingAgent::Lookup(const ObjectId& id) const {
  lookups_served_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("naming.lookups_served").Increment());
  auto it = bindings_.find(id);
  if (it == bindings_.end()) {
    return NotFoundError("no binding for object " + id.ToString());
  }
  return it->second;
}

}  // namespace dcdo
