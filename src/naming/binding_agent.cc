#include "naming/binding_agent.h"

#include <algorithm>
#include <utility>

#include "trace/trace_context.h"

namespace dcdo {

Status BindingAgent::Configure(const DirectoryConfig& config,
                               sim::Simulation* simulation,
                               sim::SimNetwork* network,
                               std::vector<sim::NodeId> shard_nodes) {
  if (config.shard_count < 1) {
    return InvalidArgumentError("directory shard count must be at least 1");
  }
  if (config.ring_points_per_shard < 1) {
    return InvalidArgumentError("ring points per shard must be at least 1");
  }
  const bool needs_substrate =
      config.lease_duration > sim::SimDuration::Zero() ||
      config.lookup_service > sim::SimDuration::Zero();
  if (needs_substrate && (simulation == nullptr || network == nullptr)) {
    return InvalidArgumentError(
        "leases / modelled lookups need a simulation and a network");
  }
  if (needs_substrate &&
      shard_nodes.size() != static_cast<std::size_t>(config.shard_count)) {
    return InvalidArgumentError(
        "expected one sim host per shard (shard_nodes size mismatch)");
  }
  if (size() != 0 || !holders_.empty()) {
    return FailedPreconditionError(
        "the directory must be empty when reconfigured (no live resharding)");
  }
  config_ = config;
  simulation_ = simulation;
  network_ = network;
  map_.Build(config.shard_count, config.ring_points_per_shard);
  shards_ = std::vector<Shard>(static_cast<std::size_t>(config.shard_count));
  for (std::size_t i = 0; i < shard_nodes.size(); ++i) {
    shards_[i].node = shard_nodes[i];
  }
  return Status::Ok();
}

void BindingAgent::Bind(const ObjectId& id, const ObjectAddress& address) {
  Shard& shard = ShardRef(id);
  auto [it, inserted] = shard.bindings.insert_or_assign(id, address);
  if (!inserted) {
    // A rebind (migration, evolution): current leaseholders are told the
    // fresh address instead of probing the dead one into their timeouts.
    PushToHolders(shard, id, &address);
  }
}

void BindingAgent::Unbind(const ObjectId& id) {
  Shard& shard = ShardRef(id);
  if (shard.bindings.erase(id) == 0) return;
  PushToHolders(shard, id, nullptr);
}

Result<ObjectAddress> BindingAgent::Lookup(const ObjectId& id) const {
  const Shard& shard = ShardRef(id);
  shard.lookups_served.Increment();
  lookups_served_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("naming.lookups_served").Increment());
  auto it = shard.bindings.find(id);
  if (it == shard.bindings.end()) {
    return NotFoundError("no binding for object " + id.ToString());
  }
  return it->second;
}

Result<ObjectAddress> BindingAgent::LookupWithLease(const ObjectId& id,
                                                    std::uint64_t holder,
                                                    sim::SimTime* expiry) {
  Shard& shard = ShardRef(id);
  shard.lookups_served.Increment();
  lookups_served_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("naming.lookups_served").Increment());
  auto it = shard.bindings.find(id);
  if (it == shard.bindings.end()) {
    return NotFoundError("no binding for object " + id.ToString());
  }
  if (leases_enabled() && holder != 0) {
    sim::SimTime now = simulation_->Now();
    *expiry = now + config_.lease_duration;
    {
      // Synchronous lease-granting lookups run on the caller's locality, so
      // two clients can reach one shard's table within a worker phase.
      sim::GatedLock lock(shard.lease_mu);
      shard.leases.Grant(id, holder, now, *expiry);
    }
    leases_granted_.Increment();
    DCDO_TRACE_HOOK(metrics().GetCounter("naming.leases_granted").Increment());
  }
  return it->second;
}

void BindingAgent::AsyncLookup(const ObjectId& id, std::uint64_t holder,
                               sim::NodeId client, LookupCallback done) {
  if (!lookup_service_modeled()) {
    // Unmodelled service: resolve immediately, exactly like the sync paths.
    sim::SimTime expiry{};
    Result<ObjectAddress> result =
        holder != 0 ? LookupWithLease(id, holder, &expiry) : Lookup(id);
    done(std::move(result), expiry);
    return;
  }
  if (config_.remote_requests && network_ != nullptr) {
    // Remote service: the lookup is a real request message to the shard's
    // host, and the answer travels back the same way. The shard's service
    // queue (busy_until) is then only ever advanced by delivery events on
    // the shard's own locality, whose NIC-serialized arrival order is
    // deterministic — the form the parallel executor requires
    // (ValidateCostModel enforces this combination when sim_workers > 1).
    const std::uint32_t reply_affinity = simulation_->CurrentAffinity();
    network_->Send(
        client, ShardRef(id).node, config_.request_bytes,
        [this, id, holder, client, reply_affinity,
         issued = simulation_->Now(), done = std::move(done)]() mutable {
          Shard& shard = ShardRef(id);
          sim::SimTime now = simulation_->Now();
          sim::SimTime start = std::max(now, shard.busy_until);
          sim::SimTime complete = start + config_.lookup_service;
          shard.busy_until = complete;
          simulation_->ScheduleAt(
              complete,
              [this, id, holder, client, reply_affinity, issued,
               done = std::move(done)]() mutable {
                sim::SimTime expiry{};
                Result<ObjectAddress> result =
                    holder != 0 ? LookupWithLease(id, holder, &expiry)
                                : Lookup(id);
                DCDO_TRACE_HOOK(metrics()
                                    .GetHistogram("naming.lookup_latency")
                                    .Record(simulation_->Now() - issued));
                // The reply resumes the caller's continuation wherever the
                // lookup was issued (its locality was captured up front).
                network_->Send(
                    ShardRef(id).node, client, config_.request_bytes,
                    [result = std::move(result), expiry,
                     done = std::move(done)]() mutable {
                      done(std::move(result), expiry);
                    },
                    reply_affinity);
              });
        });
    return;
  }
  Shard& shard = ShardRef(id);
  sim::SimTime now = simulation_->Now();
  sim::SimTime start = std::max(now, shard.busy_until);
  sim::SimTime complete = start + config_.lookup_service;
  shard.busy_until = complete;
  simulation_->Schedule(
      complete - now,
      [this, id, holder, issued = now, done = std::move(done)]() mutable {
        sim::SimTime expiry{};
        Result<ObjectAddress> result =
            holder != 0 ? LookupWithLease(id, holder, &expiry) : Lookup(id);
        DCDO_TRACE_HOOK(metrics()
                            .GetHistogram("naming.lookup_latency")
                            .Record(simulation_->Now() - issued));
        done(std::move(result), expiry);
      });
}

std::uint64_t BindingAgent::RegisterHolder(sim::NodeId node,
                                           InvalidationSink* sink) {
  std::uint64_t holder = next_holder_++;
  holders_.emplace(holder, HolderRecord{node, sink});
  return holder;
}

void BindingAgent::UnregisterHolder(std::uint64_t holder) {
  holders_.erase(holder);
  for (Shard& shard : shards_) {
    sim::GatedLock lock(shard.lease_mu);
    shard.leases.DropHolder(holder);
  }
}

std::size_t BindingAgent::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.bindings.size();
  return total;
}

std::size_t BindingAgent::live_leases() const {
  if (simulation_ == nullptr) return 0;
  sim::SimTime now = simulation_->Now();
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    sim::GatedLock lock(shard.lease_mu);
    total += shard.leases.LiveCount(now);
  }
  return total;
}

void BindingAgent::PushToHolders(Shard& shard, const ObjectId& id,
                                 const ObjectAddress* fresh) {
  if (!leases_enabled()) return;
  sim::SimTime now = simulation_->Now();
  // Ordered by holder id (LeaseTable keeps holder sets in std::map), so the
  // push fan-out hits the shard NIC in a deterministic order.
  std::vector<std::uint64_t> live;
  {
    sim::GatedLock lock(shard.lease_mu);
    live = shard.leases.LiveHolders(id, now);
    if (fresh == nullptr) {
      // The binding died: consume the leases. Holders that miss the notice
      // (partitioned, message lost) stop trusting the entry at expiry anyway.
      shard.leases.Drop(id);
    }
  }
  if (live.empty()) return;
  sim::SimTime lease_expiry = now + config_.lease_duration;
  bool has_fresh = fresh != nullptr;
  ObjectAddress address = has_fresh ? *fresh : ObjectAddress::Invalid();
  for (std::uint64_t holder : live) {
    auto it = holders_.find(holder);
    if (it == holders_.end()) continue;  // cache destroyed; lease is moot
    if (has_fresh) {
      // The push renews the lease alongside the fresh binding, so a holder
      // keeps exactly one live lease per entry it trusts.
      sim::GatedLock lock(shard.lease_mu);
      shard.leases.Grant(id, holder, now, lease_expiry);
    }
    invalidations_sent_.Increment();
    DCDO_TRACE_HOOK(
        metrics().GetCounter("naming.invalidations_sent").Increment());
    // Send() enforces reachability: a partitioned or down holder silently
    // loses the notice, which is precisely the lost-invalidation case lease
    // expiry exists to cover.
    network_->Send(shard.node, it->second.node, config_.invalidation_bytes,
                   [this, holder, id, address, has_fresh, lease_expiry]() {
                     DeliverInvalidation(holder, id, address, has_fresh,
                                         lease_expiry);
                   });
  }
}

void BindingAgent::DeliverInvalidation(std::uint64_t holder,
                                       const ObjectId& id,
                                       const ObjectAddress& address,
                                       bool has_fresh,
                                       sim::SimTime lease_expiry) {
  auto it = holders_.find(holder);
  if (it == holders_.end()) return;  // holder died while the notice flew
  invalidations_delivered_.Increment();
  DCDO_TRACE_HOOK(
      metrics().GetCounter("naming.invalidations_delivered").Increment());
  it->second.sink->OnBindingInvalidated(id, has_fresh ? &address : nullptr,
                                        lease_expiry);
}

}  // namespace dcdo
