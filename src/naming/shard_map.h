// ShardMap: consistent-hash partitioning of the binding namespace.
//
// The directory is split across N shard replicas by hashing each key onto a
// ring of virtual points (naming_ring_points per shard) and routing to the
// first point at or after the key's hash. Consistent hashing keeps the map
// stable under reconfiguration: growing N by one moves only ~1/(N+1) of the
// keys, so a future shard-split protocol invalidates a sliver of the
// namespace instead of all of it.
//
// Keys arrive pre-hashed as 64-bit values (ObjectIdHash for LOIDs, the
// NameId value for interned names) — routing never touches a string. The
// single-shard map short-circuits to shard 0 without hashing at all, which
// is what keeps the shard_count = 1 configuration on the legacy path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/object_id.h"
#include "naming/name_id.h"

namespace dcdo {

class ShardMap {
 public:
  // A map with `shard_count` = 1 (the default) routes everything to shard 0.
  ShardMap() { Build(1, 1); }

  // (Re)builds the ring deterministically from the shard count alone: two
  // maps built with the same arguments route identically, across runs and
  // across processes.
  void Build(int shard_count, int points_per_shard);

  int shard_count() const { return shard_count_; }

  // Routes a pre-hashed 64-bit key to its owning shard, in [0, shard_count).
  int ShardForHash(std::uint64_t hash) const {
    if (shard_count_ == 1) return 0;  // legacy fast path: no ring walk
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), hash,
        [](const RingPoint& p, std::uint64_t h) { return p.first < h; });
    if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
    return static_cast<int>(it->second);
  }

  int ShardFor(const ObjectId& id) const {
    if (shard_count_ == 1) return 0;
    return ShardForHash(Mix(ObjectIdHash{}(id)));
  }

  int ShardFor(NameId id) const {
    if (shard_count_ == 1) return 0;
    return ShardForHash(Mix(id.value));
  }

 private:
  using RingPoint = std::pair<std::uint64_t, std::uint32_t>;  // (point, shard)

  // Finalizer-strength mix (splitmix64): ring placement and key routing both
  // need all 64 bits scrambled, and ObjectIdHash alone leaves low-entropy
  // instance counters clustered.
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::vector<RingPoint> ring_;  // sorted by point
  int shard_count_ = 1;
};

}  // namespace dcdo
