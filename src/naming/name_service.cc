#include "naming/name_service.h"

#include <algorithm>

namespace dcdo {

Result<std::string> NameService::Normalize(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path '" + path + "' is not absolute");
  }
  if (path == "/") return std::string("/");
  if (path.back() == '/') {
    return InvalidArgumentError("path '" + path + "' has a trailing slash");
  }
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/' && path[i - 1] == '/') {
      return InvalidArgumentError("path '" + path + "' has an empty segment");
    }
  }
  return path;
}

Result<NameId> NameService::Intern(const std::string& path) {
  DCDO_ASSIGN_OR_RETURN(std::string normalized, Normalize(path));
  if (normalized == "/") {
    return InvalidArgumentError("the root directory has no name id");
  }
  return ObjectNameTable::Global().Intern(normalized);
}

bool NameService::DirectoryUnderlies(std::string_view prefix_with_slash) const {
  auto it = ordered_.lower_bound(prefix_with_slash);
  return it != ordered_.end() &&
         it->first.substr(0, prefix_with_slash.size()) == prefix_with_slash;
}

Result<NameId> NameService::BindInterned(const std::string& raw_path,
                                         const ObjectId& id) {
  DCDO_ASSIGN_OR_RETURN(std::string path, Normalize(raw_path));
  if (path == "/") {
    return InvalidArgumentError("the root directory cannot be bound");
  }
  if (id.nil()) {
    return InvalidArgumentError("cannot bind '" + path + "' to the nil id");
  }
  NameId name = ObjectNameTable::Global().Intern(path);
  if (names_by_id_.contains(name)) {
    return AlreadyExistsError("'" + path + "' is already bound");
  }
  if (DirectoryUnderlies(std::string(path) + "/")) {
    return AlreadyExistsError("'" + path + "' is a directory");
  }
  // No ancestor of the new name may itself be a bound name. Ancestor probes
  // go through the intern table's Find (no allocation); an ancestor that was
  // never interned was certainly never bound.
  std::string_view view(path);
  for (std::size_t slash = view.rfind('/'); slash > 0;
       slash = view.rfind('/', slash - 1)) {
    NameId ancestor = ObjectNameTable::Global().Find(view.substr(0, slash));
    if (ancestor.valid() && names_by_id_.contains(ancestor)) {
      return AlreadyExistsError("'" + std::string(view.substr(0, slash)) +
                                "' is a name, not a directory");
    }
  }
  names_by_id_[name] = id;
  ordered_[std::string_view(ObjectNameTable::Global().NameOf(name))] = name;
  return name;
}

Status NameService::Bind(const std::string& raw_path, const ObjectId& id) {
  return BindInterned(raw_path, id).status();
}

Status NameService::Unbind(NameId name) {
  auto it = names_by_id_.find(name);
  if (it == names_by_id_.end()) {
    return NotFoundError(
        name.valid()
            ? "'" + ObjectNameTable::Global().NameOf(name) + "' is not bound"
            : std::string("invalid name id"));
  }
  names_by_id_.erase(it);
  ordered_.erase(std::string_view(ObjectNameTable::Global().NameOf(name)));
  return Status::Ok();
}

Status NameService::Unbind(const std::string& raw_path) {
  DCDO_ASSIGN_OR_RETURN(std::string path, Normalize(raw_path));
  NameId name = ObjectNameTable::Global().Find(path);
  if (!name.valid()) {
    return NotFoundError("'" + path + "' is not bound");
  }
  return Unbind(name);
}

Result<ObjectId> NameService::Lookup(NameId name) const {
  auto it = names_by_id_.find(name);
  if (it == names_by_id_.end()) {
    return NotFoundError(
        name.valid()
            ? "'" + ObjectNameTable::Global().NameOf(name) + "' is not bound"
            : std::string("invalid name id"));
  }
  return it->second;
}

Result<ObjectId> NameService::Lookup(const std::string& raw_path) const {
  // Fast path: one FNV-1a probe of the intern table, no allocation. A path
  // that was never interned was never bound anywhere; only then pay the
  // Normalize walk to produce the precise error.
  NameId name = ObjectNameTable::Global().Find(raw_path);
  if (name.valid()) {
    auto it = names_by_id_.find(name);
    if (it != names_by_id_.end()) return it->second;
  }
  DCDO_ASSIGN_OR_RETURN(std::string path, Normalize(raw_path));
  return NotFoundError("'" + path + "' is not bound");
}

bool NameService::IsName(const std::string& raw_path) const {
  NameId name = ObjectNameTable::Global().Find(raw_path);
  return name.valid() && names_by_id_.contains(name);
}

bool NameService::IsDirectory(const std::string& raw_path) const {
  auto normalized = Normalize(raw_path);
  if (!normalized.ok()) return false;
  if (*normalized == "/") return true;
  return DirectoryUnderlies(*normalized + "/");
}

Result<std::vector<std::string>> NameService::List(
    const std::string& raw_directory) const {
  DCDO_ASSIGN_OR_RETURN(std::string directory, Normalize(raw_directory));
  if (directory != "/" && !IsDirectory(directory)) {
    if (IsName(directory)) {
      return FailedPreconditionError("'" + directory + "' is a name");
    }
    return NotFoundError("'" + directory + "' does not exist");
  }
  std::string prefix = directory == "/" ? "/" : directory + "/";
  std::string_view prefix_view(prefix);
  std::vector<std::string> out;
  for (auto it = ordered_.lower_bound(prefix_view);
       it != ordered_.end() &&
       it->first.substr(0, prefix_view.size()) == prefix_view;
       ++it) {
    std::string_view rest = it->first;
    rest.remove_prefix(prefix_view.size());
    std::size_t slash = rest.find('/');
    std::string child = slash == std::string_view::npos
                            ? std::string(rest)
                            : std::string(rest.substr(0, slash)) + "/";
    if (out.empty() || out.back() != child) out.push_back(std::move(child));
  }
  return out;
}

}  // namespace dcdo
