#include "naming/name_service.h"

#include <algorithm>

namespace dcdo {

Result<std::string> NameService::Normalize(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path '" + path + "' is not absolute");
  }
  if (path == "/") return std::string("/");
  if (path.back() == '/') {
    return InvalidArgumentError("path '" + path + "' has a trailing slash");
  }
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/' && path[i - 1] == '/') {
      return InvalidArgumentError("path '" + path + "' has an empty segment");
    }
  }
  return path;
}

Status NameService::Bind(const std::string& raw_path, const ObjectId& id) {
  DCDO_ASSIGN_OR_RETURN(std::string path, Normalize(raw_path));
  if (path == "/") {
    return InvalidArgumentError("the root directory cannot be bound");
  }
  if (id.nil()) {
    return InvalidArgumentError("cannot bind '" + path + "' to the nil id");
  }
  if (names_.contains(path)) {
    return AlreadyExistsError("'" + path + "' is already bound");
  }
  if (IsDirectory(path)) {
    return AlreadyExistsError("'" + path + "' is a directory");
  }
  // No ancestor of the new name may itself be a bound name.
  for (std::size_t slash = path.rfind('/'); slash > 0;
       slash = path.rfind('/', slash - 1)) {
    if (names_.contains(path.substr(0, slash))) {
      return AlreadyExistsError("'" + path.substr(0, slash) +
                                "' is a name, not a directory");
    }
  }
  names_[path] = id;
  return Status::Ok();
}

Status NameService::Unbind(const std::string& raw_path) {
  DCDO_ASSIGN_OR_RETURN(std::string path, Normalize(raw_path));
  if (names_.erase(path) == 0) {
    return NotFoundError("'" + path + "' is not bound");
  }
  return Status::Ok();
}

Result<ObjectId> NameService::Lookup(const std::string& raw_path) const {
  DCDO_ASSIGN_OR_RETURN(std::string path, Normalize(raw_path));
  auto it = names_.find(path);
  if (it == names_.end()) {
    return NotFoundError("'" + path + "' is not bound");
  }
  return it->second;
}

bool NameService::IsName(const std::string& raw_path) const {
  auto normalized = Normalize(raw_path);
  return normalized.ok() && names_.contains(*normalized);
}

bool NameService::IsDirectory(const std::string& raw_path) const {
  auto normalized = Normalize(raw_path);
  if (!normalized.ok()) return false;
  if (*normalized == "/") return true;
  std::string prefix = *normalized + "/";
  auto it = names_.lower_bound(prefix);
  return it != names_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

Result<std::vector<std::string>> NameService::List(
    const std::string& raw_directory) const {
  DCDO_ASSIGN_OR_RETURN(std::string directory, Normalize(raw_directory));
  if (directory != "/" && !IsDirectory(directory)) {
    if (IsName(directory)) {
      return FailedPreconditionError("'" + directory + "' is a name");
    }
    return NotFoundError("'" + directory + "' does not exist");
  }
  std::string prefix = directory == "/" ? "/" : directory + "/";
  std::vector<std::string> out;
  for (auto it = names_.lower_bound(prefix);
       it != names_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    std::string_view rest(it->first);
    rest.remove_prefix(prefix.size());
    std::size_t slash = rest.find('/');
    std::string child = slash == std::string_view::npos
                            ? std::string(rest)
                            : std::string(rest.substr(0, slash)) + "/";
    if (out.empty() || out.back() != child) out.push_back(std::move(child));
  }
  return out;
}

}  // namespace dcdo
