#include "naming/address.h"

#include "common/strings.h"

namespace dcdo {

std::string ObjectAddress::ToString() const {
  if (!valid()) return "<unbound>";
  return StrFormat("node%u/pid%llu@e%llu", node,
                   static_cast<unsigned long long>(pid),
                   static_cast<unsigned long long>(epoch));
}

std::ostream& operator<<(std::ostream& os, const ObjectAddress& address) {
  return os << address.ToString();
}

}  // namespace dcdo
