// Object addresses: the *location-dependent* half of Legion naming.
//
// An ObjectId names an object forever; an ObjectAddress says where its
// current activation lives (host, process, and an activation epoch). When an
// object migrates or is re-activated after evolution, it gets a fresh epoch —
// invocations carrying an old epoch at the right process are rejected, which
// is how the runtime distinguishes "stale binding" from "object busy". The
// 25-35 s stale-binding discovery cost the paper reports (Section 4) is the
// client-side protocol for recovering from exactly this situation.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/host.h"

namespace dcdo {

struct ObjectAddress {
  sim::NodeId node = 0;
  sim::ProcessId pid = 0;
  std::uint64_t epoch = 0;  // bumped on every (re)activation

  bool valid() const { return pid != 0; }
  static ObjectAddress Invalid() { return ObjectAddress{}; }

  std::string ToString() const;

  friend bool operator==(const ObjectAddress&, const ObjectAddress&) = default;
};

std::ostream& operator<<(std::ostream& os, const ObjectAddress& address);

}  // namespace dcdo
