#include "naming/lease_table.h"

namespace dcdo {

void LeaseTable::Grant(const ObjectId& id, std::uint64_t holder,
                       sim::SimTime now, sim::SimTime expiry) {
  auto& holders = leases_[id];
  // Opportunistic purge: leases already expired at `now` would never be
  // pushed anyway (LiveHolders filters them), so drop them while we hold the
  // entry instead of letting dead generations accumulate.
  for (auto it = holders.begin(); it != holders.end();) {
    if (it->second <= now && it->first != holder) {
      auto rev = by_holder_.find(it->first);
      if (rev != by_holder_.end()) {
        rev->second.erase(id);
        if (rev->second.empty()) by_holder_.erase(rev);
      }
      it = holders.erase(it);
    } else {
      ++it;
    }
  }
  holders[holder] = expiry;
  by_holder_[holder].insert(id);
}

std::vector<std::uint64_t> LeaseTable::LiveHolders(const ObjectId& id,
                                                   sim::SimTime now) const {
  std::vector<std::uint64_t> out;
  auto it = leases_.find(id);
  if (it == leases_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [holder, expiry] : it->second) {
    if (expiry > now) out.push_back(holder);
  }
  return out;
}

void LeaseTable::Drop(const ObjectId& id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return;
  for (const auto& [holder, expiry] : it->second) {
    auto rev = by_holder_.find(holder);
    if (rev == by_holder_.end()) continue;
    rev->second.erase(id);
    if (rev->second.empty()) by_holder_.erase(rev);
  }
  leases_.erase(it);
}

void LeaseTable::DropHolder(std::uint64_t holder) {
  auto rev = by_holder_.find(holder);
  if (rev == by_holder_.end()) return;
  for (const ObjectId& id : rev->second) {
    auto it = leases_.find(id);
    if (it == leases_.end()) continue;
    it->second.erase(holder);
    if (it->second.empty()) leases_.erase(it);
  }
  by_holder_.erase(rev);
}

std::size_t LeaseTable::LiveCount(sim::SimTime now) const {
  std::size_t count = 0;
  for (const auto& [id, holders] : leases_) {
    for (const auto& [holder, expiry] : holders) {
      if (expiry > now) ++count;
    }
  }
  return count;
}

}  // namespace dcdo
