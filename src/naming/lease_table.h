// LeaseTable: a directory shard's record of who holds each binding.
//
// Every lease-granting lookup records (object, holder, expiry); when the
// binding changes, the shard collects the live holders and pushes them an
// invalidation (see BindingAgent). The table is pure bookkeeping — no time
// source, no I/O — so expiry is judged against a caller-supplied `now` and
// the class is trivial to test.
//
// Holder sets are kept in std::map (ordered by holder id) so invalidation
// pushes iterate in a deterministic order: the simulated network serializes
// sends behind the shard's NIC, and an unordered walk would let hash-seed
// noise reorder deliveries between runs.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/object_id.h"
#include "sim/sim_time.h"

namespace dcdo {

class LeaseTable {
 public:
  // Records (or extends) `holder`'s lease on `id` until `expiry`. Siblings
  // of the same object already expired at `now` are purged in passing,
  // bounding the table to live leases plus at most one stale generation per
  // object.
  void Grant(const ObjectId& id, std::uint64_t holder, sim::SimTime now,
             sim::SimTime expiry);

  // The holders of `id` whose leases are still live at `now`, in ascending
  // holder order. Does not modify the table.
  [[nodiscard]] std::vector<std::uint64_t> LiveHolders(const ObjectId& id,
                                                       sim::SimTime now) const;

  // Forgets every lease on `id` (the binding died with no forwarding
  // address; holders are told to drop, not to re-trust).
  void Drop(const ObjectId& id);

  // Forgets every lease `holder` holds (its cache was destroyed).
  void DropHolder(std::uint64_t holder);

  // Live leases at `now` (counts every (object, holder) pair).
  std::size_t LiveCount(sim::SimTime now) const;

  bool empty() const { return leases_.empty(); }

 private:
  // object -> (holder -> expiry), holders ordered for deterministic pushes.
  std::unordered_map<ObjectId, std::map<std::uint64_t, sim::SimTime>,
                     ObjectIdHash>
      leases_;
  // Reverse index so DropHolder is proportional to the holder's own leases,
  // not the whole table.
  std::unordered_map<std::uint64_t, std::unordered_set<ObjectId, ObjectIdHash>>
      by_holder_;
};

}  // namespace dcdo
