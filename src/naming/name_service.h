// NameService: hierarchical human-readable naming (Legion's context space).
//
// Legion layers a directory-like "context space" of string paths over the
// flat LOID namespace; the paper leans on exactly this when it argues ICOs
// let components "be named using whatever scheme exists for naming objects
// in the system". This is that scheme: absolute slash-separated paths bound
// to ObjectIds, with listing by directory. Managers publish components under
// paths like /components/libsort/2 so tools and humans can find them.
//
// Names are interned (NameId, the ObjectNameTable sibling of FunctionId):
// the binding map is keyed by the 4-byte id, so a by-name lookup pays one
// FNV-1a probe of the intern table and zero string copies, and a caller that
// holds a NameId (Bind returns it; Intern() resolves one) looks up with no
// string hashing at all. The ordered directory index — what List and
// IsDirectory walk — stores string_views into the intern table's stable
// storage, never a second copy of the path.
//
// Rules (kept deliberately simple):
//   * paths are absolute ("/a/b/c"), segments are non-empty and contain no
//     slashes; "/" itself is the root directory and cannot be bound;
//   * a path is either a *name* (bound to an object) or a *directory*
//     (a strict prefix of some bound name) — never both;
//   * Unbind removes a name; empty directories vanish with their last name.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "naming/name_id.h"

namespace dcdo {

class NameService {
 public:
  // Binds `path` to `id`, failing if the path is malformed, already bound,
  // or collides with an existing directory/name. Rebinding requires an
  // explicit Unbind first (accidental shadowing is an error, not a feature).
  [[nodiscard]] Status Bind(const std::string& path, const ObjectId& id);

  // Like Bind, but also returns the bound path's NameId so the caller can
  // hold it for id-keyed Lookup/Unbind later (managers do).
  [[nodiscard]] Result<NameId> BindInterned(const std::string& path,
                                            const ObjectId& id);

  [[nodiscard]] Status Unbind(const std::string& path);
  [[nodiscard]] Status Unbind(NameId name);

  [[nodiscard]] Result<ObjectId> Lookup(const std::string& path) const;
  // The hot path: no hashing of strings, one probe of an id-keyed map.
  [[nodiscard]] Result<ObjectId> Lookup(NameId name) const;

  // The NameId of a (normalized) path, interning it if new. Useful for
  // callers that resolve a name once and look it up repeatedly.
  [[nodiscard]] static Result<NameId> Intern(const std::string& path);

  bool IsName(const std::string& path) const;
  bool IsDirectory(const std::string& path) const;

  // Immediate children of `directory` ("/": the root). Names are returned
  // as bare segments; sub-directories carry a trailing '/'.
  [[nodiscard]] Result<std::vector<std::string>> List(const std::string& directory) const;

  std::size_t size() const { return names_by_id_.size(); }

  // Validates and canonicalizes a path (collapses nothing — rejects
  // malformed input instead). Exposed for tests.
  [[nodiscard]] static Result<std::string> Normalize(const std::string& path);

 private:
  bool DirectoryUnderlies(std::string_view prefix_with_slash) const;

  // The binding map — id-keyed, so lookups never hash a string.
  std::unordered_map<NameId, ObjectId> names_by_id_;
  // Ordered index for List/IsDirectory prefix scans. Keys are views into
  // ObjectNameTable's stable storage (interned strings never move or die).
  std::map<std::string_view, NameId> ordered_;
};

}  // namespace dcdo
