// NameService: hierarchical human-readable naming (Legion's context space).
//
// Legion layers a directory-like "context space" of string paths over the
// flat LOID namespace; the paper leans on exactly this when it argues ICOs
// let components "be named using whatever scheme exists for naming objects
// in the system". This is that scheme: absolute slash-separated paths bound
// to ObjectIds, with listing by directory. Managers publish components under
// paths like /components/libsort/2 so tools and humans can find them.
//
// Rules (kept deliberately simple):
//   * paths are absolute ("/a/b/c"), segments are non-empty and contain no
//     slashes; "/" itself is the root directory and cannot be bound;
//   * a path is either a *name* (bound to an object) or a *directory*
//     (a strict prefix of some bound name) — never both;
//   * Unbind removes a name; empty directories vanish with their last name.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"

namespace dcdo {

class NameService {
 public:
  // Binds `path` to `id`, failing if the path is malformed, already bound,
  // or collides with an existing directory/name. Rebinding requires an
  // explicit Unbind first (accidental shadowing is an error, not a feature).
  [[nodiscard]] Status Bind(const std::string& path, const ObjectId& id);

  [[nodiscard]] Status Unbind(const std::string& path);

  [[nodiscard]] Result<ObjectId> Lookup(const std::string& path) const;

  bool IsName(const std::string& path) const;
  bool IsDirectory(const std::string& path) const;

  // Immediate children of `directory` ("/": the root). Names are returned
  // as bare segments; sub-directories carry a trailing '/'.
  [[nodiscard]] Result<std::vector<std::string>> List(const std::string& directory) const;

  std::size_t size() const { return names_.size(); }

  // Validates and canonicalizes a path (collapses nothing — rejects
  // malformed input instead). Exposed for tests.
  [[nodiscard]] static Result<std::string> Normalize(const std::string& path);

 private:
  std::map<std::string, ObjectId> names_;
};

}  // namespace dcdo
