#include "naming/name_id.h"

#include <mutex>

namespace dcdo {

ObjectNameTable& ObjectNameTable::Global() {
  static ObjectNameTable table;
  return table;
}

NameId ObjectNameTable::Intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return NameId{it->second};
  }
  std::unique_lock lock(mutex_);
  auto it = index_.find(name);  // raced with another interner?
  if (it != index_.end()) return NameId{it->second};
  auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return NameId{id};
}

NameId ObjectNameTable::Find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = index_.find(name);
  return it == index_.end() ? NameId::Invalid() : NameId{it->second};
}

const std::string& ObjectNameTable::NameOf(NameId id) const {
  std::shared_lock lock(mutex_);
  return names_.at(id.value);
}

std::size_t ObjectNameTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

}  // namespace dcdo
