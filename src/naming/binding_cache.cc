#include "naming/binding_cache.h"

#include "check/check_context.h"

namespace dcdo {

BindingCache::BindingCache(const BindingAgent* agent) : agent_(*agent) {
#if defined(DCDO_CHECK_ENABLED)
  // Expose the cache contents to the binding-coherence invariant. The probe
  // holds a raw `this`; the destructor unregisters before the cache dies.
  if (auto* ctx = check::CheckContext::Current()) {
    check_handle_ = ctx->RegisterBindingCache([this]() {
      std::vector<check::CacheEntrySnapshot> entries;
      entries.reserve(cache_.size());
      for (const auto& [id, address] : cache_) {
        entries.push_back({id, address.node, address.pid, address.epoch});
      }
      return entries;
    });
  }
#endif
}

BindingCache::~BindingCache() {
#if defined(DCDO_CHECK_ENABLED)
  if (check_handle_ != 0) {
    if (auto* ctx = check::CheckContext::Current()) {
      ctx->UnregisterBindingCache(check_handle_);
    }
  }
#endif
}

Result<ObjectAddress> BindingCache::Resolve(const ObjectId& id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  cache_[id] = address;
  return address;
}

Result<ObjectAddress> BindingCache::RefreshFromAgent(const ObjectId& id) {
  ++refreshes_;
  cache_.erase(id);
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  cache_[id] = address;
  DCDO_CHECK_HOOK(
      OnBindingRefreshed(id, address.node, address.pid, address.epoch));
  return address;
}

}  // namespace dcdo
