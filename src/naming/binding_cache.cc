#include "naming/binding_cache.h"

#include <utility>

#include "check/check_context.h"
#include "trace/trace_context.h"

namespace dcdo {

BindingCache::BindingCache(BindingAgent* agent, std::size_t capacity,
                           sim::NodeId node)
    : agent_(*agent), capacity_(capacity), node_(node) {
  if (agent_.leases_enabled()) {
    holder_ = agent_.RegisterHolder(node_, this);
  }
#if defined(DCDO_CHECK_ENABLED)
  // Expose the cache contents to the binding-coherence invariant. The probe
  // holds a raw `this`; the destructor unregisters before the cache dies.
  if (auto* ctx = check::CheckContext::Current()) {
    check_handle_ = ctx->RegisterBindingCache([this]() {
      std::vector<check::CacheEntrySnapshot> entries;
      entries.reserve(cache_.size());
      for (const auto& [id, entry] : cache_) {
        entries.push_back(
            {id, entry.address.node, entry.address.pid, entry.address.epoch});
      }
      return entries;
    });
  }
#endif
}

BindingCache::~BindingCache() {
  if (holder_ != 0) agent_.UnregisterHolder(holder_);
#if defined(DCDO_CHECK_ENABLED)
  if (check_handle_ != 0) {
    if (auto* ctx = check::CheckContext::Current()) {
      ctx->UnregisterBindingCache(check_handle_);
    }
  }
#endif
}

bool BindingCache::Expired(const Entry& entry) const {
  if (!entry.leased) return false;
  const sim::Simulation* sim = agent_.simulation();
  return sim != nullptr && entry.lease_expiry <= sim->Now();
}

void BindingCache::Store(const ObjectId& id, const ObjectAddress& address) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second.address = address;
    it->second.leased = false;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(id);
  cache_.emplace(id, Entry{address, lru_.begin(), sim::SimTime{}, false});
  if (capacity_ != 0 && cache_.size() > capacity_) {
    const ObjectId& victim = lru_.back();
    cache_.erase(victim);
    lru_.pop_back();
    evictions_.Increment();
    DCDO_TRACE_HOOK(metrics().GetCounter("naming.cache_evictions").Increment());
  }
}

void BindingCache::StoreLeased(const ObjectId& id, const ObjectAddress& address,
                               sim::SimTime lease_expiry) {
  Store(id, address);
  auto it = cache_.find(id);
  if (it == cache_.end()) return;  // capacity 1 corner: evicted immediately
  it->second.leased = true;
  it->second.lease_expiry = lease_expiry;
}

void BindingCache::Invalidate(const ObjectId& id) {
  auto it = cache_.find(id);
  if (it == cache_.end()) return;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
}

void BindingCache::InvalidateAll() {
  cache_.clear();
  lru_.clear();
}

void BindingCache::OnBindingInvalidated(const ObjectId& id,
                                        const ObjectAddress* fresh,
                                        sim::SimTime lease_expiry) {
  invalidations_received_.Increment();
  DCDO_TRACE_HOOK(
      metrics().GetCounter("naming.invalidations_received").Increment());
  if (fresh == nullptr || !fresh->valid()) {
    // The binding died with no forwarding address: stop serving it. The next
    // Resolve misses and consults the agent like first contact.
    Invalidate(id);
    return;
  }
  // The shard pushed the replacement binding along with a renewed lease:
  // update in place, so the very next Resolve serves the fresh address.
  StoreLeased(id, *fresh, lease_expiry);
  DCDO_CHECK_HOOK(OnBindingRefreshed(id, fresh->node, fresh->pid,
                                     fresh->epoch));
}

std::optional<ObjectAddress> BindingCache::CachedAddress(
    const ObjectId& id) const {
  auto it = cache_.find(id);
  if (it == cache_.end() || Expired(it->second)) return std::nullopt;
  return it->second.address;
}

Result<ObjectAddress> BindingCache::Resolve(const ObjectId& id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    if (!Expired(it->second)) {
      hits_.Increment();
      DCDO_TRACE_HOOK(metrics().GetCounter("naming.cache_hits").Increment());
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.address;
    }
    // The lease ran out with no invalidation seen (lost push, partition, or
    // plain disuse): the entry can no longer be trusted. Drop it and fall
    // through to the authoritative fetch.
    lease_expirations_.Increment();
    DCDO_TRACE_HOOK(
        metrics().GetCounter("naming.lease_expirations").Increment());
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
  misses_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("naming.cache_misses").Increment());
  if (holder_ != 0) {
    sim::SimTime expiry{};
    DCDO_ASSIGN_OR_RETURN(ObjectAddress address,
                          agent_.LookupWithLease(id, holder_, &expiry));
    StoreLeased(id, address, expiry);
    return address;
  }
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  Store(id, address);
  return address;
}

Result<ObjectAddress> BindingCache::RefreshFromAgent(const ObjectId& id) {
  refreshes_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("naming.refreshes").Increment());
  Invalidate(id);  // a failed lookup must not leave the stale entry behind
  if (holder_ != 0) {
    sim::SimTime expiry{};
    DCDO_ASSIGN_OR_RETURN(ObjectAddress address,
                          agent_.LookupWithLease(id, holder_, &expiry));
    StoreLeased(id, address, expiry);
    DCDO_CHECK_HOOK(
        OnBindingRefreshed(id, address.node, address.pid, address.epoch));
    return address;
  }
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  Store(id, address);
  DCDO_CHECK_HOOK(
      OnBindingRefreshed(id, address.node, address.pid, address.epoch));
  return address;
}

void BindingCache::RefreshFromAgentAsync(
    const ObjectId& id, std::function<void(Result<ObjectAddress>)> done) {
  if (!agent_.lookup_service_modeled()) {
    done(RefreshFromAgent(id));
    return;
  }
  refreshes_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("naming.refreshes").Increment());
  Invalidate(id);
  agent_.AsyncLookup(
      id, holder_, node_,
      [this, id, done = std::move(done)](Result<ObjectAddress> address,
                                         sim::SimTime expiry) {
        if (!address.ok()) {
          done(std::move(address));
          return;
        }
        if (holder_ != 0) {
          StoreLeased(id, *address, expiry);
        } else {
          Store(id, *address);
        }
        DCDO_CHECK_HOOK(OnBindingRefreshed(id, address->node, address->pid,
                                           address->epoch));
        done(std::move(address));
      });
}

}  // namespace dcdo
