#include "naming/binding_cache.h"

namespace dcdo {

Result<ObjectAddress> BindingCache::Resolve(const ObjectId& id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  cache_[id] = address;
  return address;
}

Result<ObjectAddress> BindingCache::RefreshFromAgent(const ObjectId& id) {
  ++refreshes_;
  cache_.erase(id);
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  cache_[id] = address;
  return address;
}

}  // namespace dcdo
