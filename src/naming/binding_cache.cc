#include "naming/binding_cache.h"

#include "check/check_context.h"
#include "trace/trace_context.h"

namespace dcdo {

BindingCache::BindingCache(const BindingAgent* agent, std::size_t capacity)
    : agent_(*agent), capacity_(capacity) {
#if defined(DCDO_CHECK_ENABLED)
  // Expose the cache contents to the binding-coherence invariant. The probe
  // holds a raw `this`; the destructor unregisters before the cache dies.
  if (auto* ctx = check::CheckContext::Current()) {
    check_handle_ = ctx->RegisterBindingCache([this]() {
      std::vector<check::CacheEntrySnapshot> entries;
      entries.reserve(cache_.size());
      for (const auto& [id, entry] : cache_) {
        entries.push_back(
            {id, entry.address.node, entry.address.pid, entry.address.epoch});
      }
      return entries;
    });
  }
#endif
}

BindingCache::~BindingCache() {
#if defined(DCDO_CHECK_ENABLED)
  if (check_handle_ != 0) {
    if (auto* ctx = check::CheckContext::Current()) {
      ctx->UnregisterBindingCache(check_handle_);
    }
  }
#endif
}

void BindingCache::Store(const ObjectId& id, const ObjectAddress& address) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second.address = address;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(id);
  cache_.emplace(id, Entry{address, lru_.begin()});
  if (capacity_ != 0 && cache_.size() > capacity_) {
    const ObjectId& victim = lru_.back();
    cache_.erase(victim);
    lru_.pop_back();
    evictions_.Increment();
    DCDO_TRACE_HOOK(metrics().GetCounter("naming.cache_evictions").Increment());
  }
}

void BindingCache::Invalidate(const ObjectId& id) {
  auto it = cache_.find(id);
  if (it == cache_.end()) return;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
}

void BindingCache::InvalidateAll() {
  cache_.clear();
  lru_.clear();
}

Result<ObjectAddress> BindingCache::Resolve(const ObjectId& id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    hits_.Increment();
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.address;
  }
  misses_.Increment();
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  Store(id, address);
  return address;
}

Result<ObjectAddress> BindingCache::RefreshFromAgent(const ObjectId& id) {
  refreshes_.Increment();
  DCDO_TRACE_HOOK(metrics().GetCounter("naming.refreshes").Increment());
  Invalidate(id);  // a failed lookup must not leave the stale entry behind
  DCDO_ASSIGN_OR_RETURN(ObjectAddress address, agent_.Lookup(id));
  Store(id, address);
  DCDO_CHECK_HOOK(
      OnBindingRefreshed(id, address.node, address.pid, address.epoch));
  return address;
}

}  // namespace dcdo
