// NameId: dense interned handles for object names (context-space paths).
//
// The same fix FunctionId applies to the dynamic-function call path, applied
// to the naming hot path: a string-keyed directory pays hashing and string
// copies on every lookup, so a name is resolved to a dense NameId once and
// every name-keyed map on the lookup path indexes by the 4-byte id instead.
// NameService keys its binding map by NameId; the string form survives only
// in the intern table (which also backs the ordered directory index).
//
// The table is process-global and append-only: ids are never reused, and the
// backing strings have stable addresses for the life of the process, so
// string_views handed out by NameOf() may be held indefinitely.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dcdo {

// A dense handle for an interned object name. Value-comparable, hashable,
// and cheap to copy; kInvalid means "never interned" (and therefore: no
// NameService anywhere has ever bound the name).
struct NameId {
  static constexpr std::uint32_t kInvalidValue = 0xFFFFFFFFu;

  std::uint32_t value = kInvalidValue;

  static constexpr NameId Invalid() { return NameId{}; }
  bool valid() const { return value != kInvalidValue; }

  friend bool operator==(NameId, NameId) = default;
};

// Inline FNV-1a for object names, mirroring FunctionNameHash: paths are
// short, and keeping the per-byte loop visible to the optimizer beats the
// library hash's opaque call. Transparent so string_view probes never
// construct a std::string.
struct ObjectNameHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// The process-global intern table. Read-mostly: Find() and NameOf() take a
// shared lock; Intern() upgrades to exclusive only when the name is new.
class ObjectNameTable {
 public:
  static ObjectNameTable& Global();

  // Returns the id for `name`, creating one if this is the first sighting.
  NameId Intern(std::string_view name);

  // Returns the id for `name`, or NameId::Invalid() if never interned.
  // Never allocates — this is the one string hash a by-name lookup pays.
  NameId Find(std::string_view name) const;

  // The interned name. The reference is stable for the process lifetime.
  // `id` must be valid and in range.
  const std::string& NameOf(NameId id) const;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;  // deque: stable addresses across growth
  // Views point into names_, so the index never owns string storage twice.
  std::unordered_map<std::string_view, std::uint32_t, ObjectNameHash> index_;
};

}  // namespace dcdo

template <>
struct std::hash<dcdo::NameId> {
  std::size_t operator()(dcdo::NameId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
