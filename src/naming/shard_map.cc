#include "naming/shard_map.h"

namespace dcdo {

void ShardMap::Build(int shard_count, int points_per_shard) {
  shard_count_ = shard_count;
  ring_.clear();
  if (shard_count <= 1) return;  // shard 0 owns everything; no ring needed
  ring_.reserve(static_cast<std::size_t>(shard_count) *
                static_cast<std::size_t>(points_per_shard));
  for (std::uint32_t shard = 0; shard < static_cast<std::uint32_t>(shard_count);
       ++shard) {
    for (std::uint32_t point = 0;
         point < static_cast<std::uint32_t>(points_per_shard); ++point) {
      // Point placement depends only on (shard, replica) — the ring is a pure
      // function of its Build() arguments.
      std::uint64_t seed =
          (static_cast<std::uint64_t>(shard) << 32) | (point + 1);
      ring_.emplace_back(Mix(seed), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

}  // namespace dcdo
