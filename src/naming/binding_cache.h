// BindingCache: a client's local cache of object bindings.
//
// The paper observes that after a monolithic Legion object evolves (new
// process, new address), "it takes objects approximately 25 to 35 seconds to
// realize that a local binding contains a physical address that the object is
// no longer using". That delay is a client-side protocol: invocations to the
// dead address time out (CostModel::invocation_timeout), are retried
// (stale_retry_count), and only then does the client consult the binding
// agent (rebind_query). This class holds the cache and implements the refresh
// decision; the invoker (rpc layer) drives the retry loop.
//
// When the agent grants leases (CostModel::binding_lease_duration > 0) the
// cache also participates in the invalidation protocol: it registers itself
// as a leaseholder, every fetched entry carries its lease expiry, a pushed
// invalidation replaces (or drops) the entry immediately, and an entry whose
// lease has expired is treated as a miss — never served stale past its
// lease. With leases off, entries never expire and staleness is discovered
// by the rpc layer's timeout probing alone (the legacy protocol).
//
// The cache is bounded: entries are kept in LRU order and the least recently
// used binding is evicted once `capacity` is exceeded (capacity comes from
// CostModel::binding_cache_capacity; 0 means unbounded). Eviction is safe by
// construction — a dropped binding is re-fetched from the agent on the next
// miss, exactly like first contact.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/object_id.h"
#include "common/status.h"
#include "naming/address.h"
#include "naming/binding_agent.h"
#include "sim/simulation.h"
#include "trace/metrics.h"

namespace dcdo {

class BindingCache : public InvalidationSink {
 public:
  // Generous default; real clients pass CostModel::binding_cache_capacity.
  static constexpr std::size_t kDefaultCapacity = 65536;

  // `node` is the sim host this cache lives on — the destination for pushed
  // invalidations. Callers outside the simulated cluster (unit tests of the
  // bare cache) may leave it 0; with leases off it is never used.
  explicit BindingCache(BindingAgent* agent,
                        std::size_t capacity = kDefaultCapacity,
                        sim::NodeId node = 0);
  ~BindingCache();
  BindingCache(const BindingCache&) = delete;
  BindingCache& operator=(const BindingCache&) = delete;

  // Cached binding if present (and, under leases, not expired), else
  // authoritative lookup (which populates the cache). A cached entry may of
  // course be stale — that is the point.
  [[nodiscard]] Result<ObjectAddress> Resolve(const ObjectId& id);

  // Drops the cached entry and re-fetches from the agent. Returns the fresh
  // binding. The caller charges CostModel::rebind_query in sim time.
  [[nodiscard]] Result<ObjectAddress> RefreshFromAgent(const ObjectId& id);

  // Modelled refresh: like RefreshFromAgent, but the fetch queues on the
  // owning directory shard (BindingAgent::AsyncLookup) and `done` runs at
  // completion time. Falls back to the synchronous path when the lookup
  // service is unmodelled.
  void RefreshFromAgentAsync(const ObjectId& id,
                             std::function<void(Result<ObjectAddress>)> done);

  // The cached address without any side effects: no LRU touch, no stats, no
  // fetch; nullopt when absent or lease-expired. The rpc layer uses this to
  // notice that an invalidation replaced the binding mid-call.
  [[nodiscard]] std::optional<ObjectAddress> CachedAddress(
      const ObjectId& id) const;

  void Invalidate(const ObjectId& id);
  void InvalidateAll();

  // InvalidationSink: a directory shard pushed a fresh binding (entry is
  // replaced in place under the renewed lease) or a drop notice.
  void OnBindingInvalidated(const ObjectId& id, const ObjectAddress* fresh,
                            sim::SimTime lease_expiry) override;

  bool Cached(const ObjectId& id) const { return cache_.contains(id); }
  std::size_t size() const { return cache_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t refreshes() const { return refreshes_.value(); }
  std::uint64_t evictions() const { return evictions_.value(); }
  std::uint64_t invalidations_received() const {
    return invalidations_received_.value();
  }
  std::uint64_t lease_expirations() const {
    return lease_expirations_.value();
  }

 private:
  struct Entry {
    ObjectAddress address;
    std::list<ObjectId>::iterator lru_it;  // position in lru_ (front = MRU)
    // Leases: the entry is trusted until `lease_expiry`; `leased` is false
    // for entries stored while leases are off (never expire).
    sim::SimTime lease_expiry;
    bool leased = false;
  };

  // Inserts or overwrites `id`, moves it to MRU, and evicts the LRU entry
  // if the bound is now exceeded.
  void Store(const ObjectId& id, const ObjectAddress& address);
  void StoreLeased(const ObjectId& id, const ObjectAddress& address,
                   sim::SimTime lease_expiry);
  // True when the entry's lease (if any) has run out at the current sim time.
  bool Expired(const Entry& entry) const;

  BindingAgent& agent_;
  std::size_t capacity_;
  sim::NodeId node_ = 0;
  std::list<ObjectId> lru_;  // front = most recently used
  std::unordered_map<ObjectId, Entry, ObjectIdHash> cache_;
  // trace::Counter (atomic): stats siblings of BindingAgent::lookups_served_,
  // readable race-free from concurrent test threads.
  trace::Counter hits_;
  trace::Counter misses_;
  trace::Counter refreshes_;
  trace::Counter evictions_;
  trace::Counter invalidations_received_;
  trace::Counter lease_expirations_;
  std::uint64_t check_handle_ = 0;  // binding-coherence probe registration
  std::uint64_t holder_ = 0;       // leaseholder handle (0 = not registered)
};

}  // namespace dcdo
