// BindingCache: a client's local cache of object bindings.
//
// The paper observes that after a monolithic Legion object evolves (new
// process, new address), "it takes objects approximately 25 to 35 seconds to
// realize that a local binding contains a physical address that the object is
// no longer using". That delay is a client-side protocol: invocations to the
// dead address time out (CostModel::invocation_timeout), are retried
// (stale_retry_count), and only then does the client consult the binding
// agent (rebind_query). This class holds the cache and implements the refresh
// decision; the invoker (rpc layer) drives the retry loop.
//
// The cache is bounded: entries are kept in LRU order and the least recently
// used binding is evicted once `capacity` is exceeded (capacity comes from
// CostModel::binding_cache_capacity; 0 means unbounded). Eviction is safe by
// construction — a dropped binding is re-fetched from the agent on the next
// miss, exactly like first contact.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/object_id.h"
#include "common/status.h"
#include "naming/address.h"
#include "naming/binding_agent.h"
#include "sim/simulation.h"
#include "trace/metrics.h"

namespace dcdo {

class BindingCache {
 public:
  // Generous default; real clients pass CostModel::binding_cache_capacity.
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit BindingCache(const BindingAgent* agent,
                        std::size_t capacity = kDefaultCapacity);
  ~BindingCache();
  BindingCache(const BindingCache&) = delete;
  BindingCache& operator=(const BindingCache&) = delete;

  // Cached binding if present, else authoritative lookup (which populates the
  // cache). A cached entry may of course be stale — that is the point.
  [[nodiscard]] Result<ObjectAddress> Resolve(const ObjectId& id);

  // Drops the cached entry and re-fetches from the agent. Returns the fresh
  // binding. The caller charges CostModel::rebind_query in sim time.
  [[nodiscard]] Result<ObjectAddress> RefreshFromAgent(const ObjectId& id);

  void Invalidate(const ObjectId& id);
  void InvalidateAll();

  bool Cached(const ObjectId& id) const { return cache_.contains(id); }
  std::size_t size() const { return cache_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t refreshes() const { return refreshes_.value(); }
  std::uint64_t evictions() const { return evictions_.value(); }

 private:
  struct Entry {
    ObjectAddress address;
    std::list<ObjectId>::iterator lru_it;  // position in lru_ (front = MRU)
  };

  // Inserts or overwrites `id`, moves it to MRU, and evicts the LRU entry
  // if the bound is now exceeded.
  void Store(const ObjectId& id, const ObjectAddress& address);

  const BindingAgent& agent_;
  std::size_t capacity_;
  std::list<ObjectId> lru_;  // front = most recently used
  std::unordered_map<ObjectId, Entry, ObjectIdHash> cache_;
  // trace::Counter (atomic): stats siblings of BindingAgent::lookups_served_,
  // readable race-free from concurrent test threads.
  trace::Counter hits_;
  trace::Counter misses_;
  trace::Counter refreshes_;
  trace::Counter evictions_;
  std::uint64_t check_handle_ = 0;  // binding-coherence probe registration
};

}  // namespace dcdo
