// BindingCache: a client's local cache of object bindings.
//
// The paper observes that after a monolithic Legion object evolves (new
// process, new address), "it takes objects approximately 25 to 35 seconds to
// realize that a local binding contains a physical address that the object is
// no longer using". That delay is a client-side protocol: invocations to the
// dead address time out (CostModel::invocation_timeout), are retried
// (stale_retry_count), and only then does the client consult the binding
// agent (rebind_query). This class holds the cache and implements the refresh
// decision; the invoker (rpc layer) drives the retry loop.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/object_id.h"
#include "common/status.h"
#include "naming/address.h"
#include "naming/binding_agent.h"
#include "sim/simulation.h"

namespace dcdo {

class BindingCache {
 public:
  explicit BindingCache(const BindingAgent* agent);
  ~BindingCache();
  BindingCache(const BindingCache&) = delete;
  BindingCache& operator=(const BindingCache&) = delete;

  // Cached binding if present, else authoritative lookup (which populates the
  // cache). A cached entry may of course be stale — that is the point.
  Result<ObjectAddress> Resolve(const ObjectId& id);

  // Drops the cached entry and re-fetches from the agent. Returns the fresh
  // binding. The caller charges CostModel::rebind_query in sim time.
  Result<ObjectAddress> RefreshFromAgent(const ObjectId& id);

  void Invalidate(const ObjectId& id) { cache_.erase(id); }
  void InvalidateAll() { cache_.clear(); }

  bool Cached(const ObjectId& id) const { return cache_.contains(id); }
  std::size_t size() const { return cache_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t refreshes() const { return refreshes_; }

 private:
  const BindingAgent& agent_;
  std::unordered_map<ObjectId, ObjectAddress, ObjectIdHash> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t check_handle_ = 0;  // binding-coherence probe registration
};

}  // namespace dcdo
