// BindingAgent: the authoritative ObjectId -> ObjectAddress registry.
//
// Legion resolves LOIDs to object addresses through binding agents; clients
// cache bindings locally (see BindingCache) and fall back to the agent when a
// cached binding proves stale. The agent here is the authoritative store; the
// *cost* of consulting it remotely (CostModel::rebind_query) is charged by
// the caller's cache-refresh protocol, keeping this class a pure data
// structure that is trivial to test.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/object_id.h"
#include "common/status.h"
#include "naming/address.h"
#include "trace/metrics.h"

namespace dcdo {

class BindingAgent {
 public:
  // Registers or replaces the authoritative binding for `id`.
  void Bind(const ObjectId& id, const ObjectAddress& address);

  // Removes the binding (object deactivated with no forwarding address).
  void Unbind(const ObjectId& id);

  // Authoritative lookup; kNotFound if the object has no current activation.
  [[nodiscard]] Result<ObjectAddress> Lookup(const ObjectId& id) const;

  bool Bound(const ObjectId& id) const { return bindings_.contains(id); }
  std::size_t size() const { return bindings_.size(); }

  // Number of Lookup calls served; benches report agent load per policy.
  std::uint64_t lookups_served() const { return lookups_served_.value(); }

 private:
  std::unordered_map<ObjectId, ObjectAddress, ObjectIdHash> bindings_;
  // Atomic (trace::Counter): Lookup is const and callers probe agents from
  // concurrent test threads — a plain mutable increment here was a data race.
  mutable trace::Counter lookups_served_;
};

}  // namespace dcdo
