// BindingAgent: the authoritative ObjectId -> ObjectAddress directory,
// partitioned across shard replicas with lease/invalidation-maintained
// client caches.
//
// Legion resolves LOIDs to object addresses through binding agents; clients
// cache bindings locally (see BindingCache) and fall back to the agent when a
// cached binding proves stale. The paper's reproduction started with one
// monolithic agent and timeout-probed caches (25-35 s stale-binding
// discovery); this class keeps that exact behavior as its default and layers
// two opt-in mechanisms over it, both configured from CostModel knobs:
//
//   * Sharding (naming_shard_count > 1): the namespace is partitioned across
//     N shard replicas by consistent hashing (ShardMap); each shard owns its
//     slice of bindings, serves lookups independently, and — when the lookup
//     service time is modelled (directory_lookup_service > 0) — queues
//     requests behind its own service loop, so directory throughput scales
//     with shard count. The public Bind/Unbind/Lookup API is the router:
//     callers never see shards.
//
//   * Leases (binding_lease_duration > 0): a lease-granting lookup records
//     the calling BindingCache as a leaseholder; when the binding changes,
//     the owning shard pushes the fresh binding (or a drop notice) to every
//     live holder over the simulated network, so stale-binding discovery is
//     one sub-second notification instead of the timeout-probe schedule.
//     Lease expiry is the fallback when the push is lost (partition, holder
//     down) — a holder never trusts an entry past its lease.
//
// With the default configuration (one shard, leases off, unmodelled service)
// every call takes the legacy path: no hashing beyond the bindings map, no
// simulation access, byte-identical sim times.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "naming/address.h"
#include "naming/lease_table.h"
#include "naming/shard_map.h"
#include "sim/network.h"
#include "sim/parallel_gate.h"
#include "trace/metrics.h"

namespace dcdo {

// Receives pushed invalidations for bindings the holder has leased.
// Implemented by BindingCache; defined here so the agent does not depend on
// the cache (the cache already depends on the agent).
class InvalidationSink {
 public:
  // `fresh` is the pushed replacement binding (the holder may keep serving
  // it under the renewed lease expiring at `lease_expiry`), or nullptr when
  // the binding died with no forwarding address (the holder must drop it).
  virtual void OnBindingInvalidated(const ObjectId& id,
                                    const ObjectAddress* fresh,
                                    sim::SimTime lease_expiry) = 0;

 protected:
  ~InvalidationSink() = default;
};

// How a deployment's directory is laid out; derived from CostModel knobs by
// FromCostModel (the testbed path) or built by hand in tests.
struct DirectoryConfig {
  int shard_count = 1;
  int ring_points_per_shard = 64;
  sim::SimDuration lookup_service = sim::SimDuration::Zero();  // 0 = unmodelled
  sim::SimDuration lease_duration = sim::SimDuration::Zero();  // 0 = leases off
  std::size_t invalidation_bytes = 64;
  // Route modelled lookups as real request messages to the shard's host
  // instead of queueing in place from the caller's context. Required under
  // the parallel executor (the shard's service queue is then only ever
  // touched from its own locality); see CostModel::directory_remote_requests.
  bool remote_requests = false;
  std::size_t request_bytes = 64;

  static DirectoryConfig FromCostModel(const sim::CostModel& cost) {
    DirectoryConfig config;
    config.shard_count = cost.naming_shard_count;
    config.ring_points_per_shard = cost.naming_ring_points;
    config.lookup_service = cost.directory_lookup_service;
    config.lease_duration = cost.binding_lease_duration;
    config.invalidation_bytes = cost.invalidation_bytes;
    config.remote_requests = cost.directory_remote_requests;
    config.request_bytes = cost.directory_request_bytes;
    return config;
  }
};

class BindingAgent {
 public:
  // (result, lease_expiry): expiry is meaningful only when the lookup was
  // lease-granting (holder != 0) and succeeded.
  using LookupCallback =
      std::function<void(Result<ObjectAddress>, sim::SimTime)>;

  // Default: one shard, leases off, unmodelled — the legacy monolithic agent.
  BindingAgent() = default;

  // Applies a directory layout. Must be called while the directory is empty
  // (no bindings, no registered holders) — a live resharding would need a
  // rebalance protocol this reproduction does not model. `simulation` and
  // `network` are required when leases or the lookup-service model are on
  // (invalidation pushes travel the simulated network; modelled lookups need
  // the clock); `shard_nodes` then names the sim host of each shard, in
  // shard order.
  [[nodiscard]] Status Configure(const DirectoryConfig& config,
                                 sim::Simulation* simulation,
                                 sim::SimNetwork* network,
                                 std::vector<sim::NodeId> shard_nodes);

  // Registers or replaces the authoritative binding for `id`. A replacement
  // (rebind after migration/evolution) pushes the fresh binding to every
  // live leaseholder.
  void Bind(const ObjectId& id, const ObjectAddress& address);

  // Removes the binding (object deactivated with no forwarding address) and
  // pushes a drop notice to every live leaseholder.
  void Unbind(const ObjectId& id);

  // Authoritative lookup; kNotFound if the object has no current activation.
  [[nodiscard]] Result<ObjectAddress> Lookup(const ObjectId& id) const;

  // Lease-granting lookup: like Lookup, but additionally records `holder`
  // (a RegisterHolder handle) as a leaseholder and returns the lease expiry
  // through `expiry`. Falls back to a plain lookup when leases are off.
  [[nodiscard]] Result<ObjectAddress> LookupWithLease(const ObjectId& id,
                                                      std::uint64_t holder,
                                                      sim::SimTime* expiry);

  // Modelled lookup: the request queues behind the owning shard's other
  // in-progress lookups, occupies the shard for lookup_service, and then
  // completes (`done` runs at completion time). With holder != 0 the lookup
  // is lease-granting. Falls back to an immediate synchronous resolution
  // when the service model is off. `client` is the calling node; with
  // remote_requests the lookup travels the network as a request message to
  // the shard's host and the answer returns the same way (so the queueing at
  // busy_until happens on the shard's own locality under the parallel
  // executor), otherwise it only labels the caller.
  void AsyncLookup(const ObjectId& id, std::uint64_t holder,
                   sim::NodeId client, LookupCallback done);

  // Leaseholder registry (BindingCache constructor/destructor). The returned
  // handle is never reused; 0 is never a valid handle.
  std::uint64_t RegisterHolder(sim::NodeId node, InvalidationSink* sink);
  void UnregisterHolder(std::uint64_t holder);

  bool Bound(const ObjectId& id) const {
    return ShardRef(id).bindings.contains(id);
  }
  std::size_t size() const;

  bool leases_enabled() const {
    return config_.lease_duration > sim::SimDuration::Zero() &&
           network_ != nullptr;
  }
  bool lookup_service_modeled() const {
    return config_.lookup_service > sim::SimDuration::Zero() &&
           simulation_ != nullptr;
  }
  sim::Simulation* simulation() const { return simulation_; }
  const DirectoryConfig& config() const { return config_; }

  int shard_count() const { return map_.shard_count(); }
  std::size_t shard_size(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].bindings.size();
  }
  std::uint64_t shard_lookups_served(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].lookups_served.value();
  }

  // Number of Lookup calls served (all shards); benches report agent load
  // per policy.
  std::uint64_t lookups_served() const { return lookups_served_.value(); }
  std::uint64_t leases_granted() const { return leases_granted_.value(); }
  std::uint64_t invalidations_sent() const {
    return invalidations_sent_.value();
  }
  std::uint64_t invalidations_delivered() const {
    return invalidations_delivered_.value();
  }
  // Live leases across all shards, judged at the current sim time (0 when
  // unattached).
  std::size_t live_leases() const;

 private:
  struct Shard {
    std::unordered_map<ObjectId, ObjectAddress, ObjectIdHash> bindings;
    LeaseTable leases;
    // Guards `leases` under the parallel executor: a synchronous
    // lease-granting lookup runs on the *caller's* locality, so two clients
    // on different localities can grant against one shard concurrently
    // (grants commute — the table is keyed by (id, holder) and ordered, so
    // insertion interleaving never changes push order). Locks only while a
    // ParallelExecutor is live; zero cost on the legacy path.
    mutable sim::GatedMutex lease_mu;
    sim::NodeId node = 0;          // sim host serving this shard
    sim::SimTime busy_until;       // modelled service queue drains here
    // Atomic (trace::Counter): Lookup is const and callers probe agents from
    // concurrent test threads — a plain mutable increment would be a race.
    mutable trace::Counter lookups_served;
  };
  struct HolderRecord {
    sim::NodeId node = 0;
    InvalidationSink* sink = nullptr;
  };

  std::size_t ShardIndex(const ObjectId& id) const {
    return static_cast<std::size_t>(map_.ShardFor(id));
  }
  const Shard& ShardRef(const ObjectId& id) const {
    return shards_[ShardIndex(id)];
  }
  Shard& ShardRef(const ObjectId& id) { return shards_[ShardIndex(id)]; }

  // Pushes `fresh` (or a drop notice when null) to every live leaseholder of
  // `id` over the simulated network. No-op when leases are off.
  void PushToHolders(Shard& shard, const ObjectId& id,
                     const ObjectAddress* fresh);
  void DeliverInvalidation(std::uint64_t holder, const ObjectId& id,
                           const ObjectAddress& address, bool has_fresh,
                           sim::SimTime lease_expiry);

  DirectoryConfig config_;
  ShardMap map_;
  // Shard holds an atomic counter, so the vector is sized in one shot
  // (vector(n), default-inserted in place) and never resized afterwards —
  // which also keeps the shard references captured by in-flight modelled
  // lookups stable.
  std::vector<Shard> shards_ = std::vector<Shard>(1);
  sim::Simulation* simulation_ = nullptr;
  sim::SimNetwork* network_ = nullptr;
  // Holder handles are looked up point-wise (never iterated): registration
  // order must not influence push order, which is fixed by LeaseTable's
  // ordered holder sets instead.
  std::unordered_map<std::uint64_t, HolderRecord> holders_;
  std::uint64_t next_holder_ = 1;
  // Sharded: bumped from every locality that resolves a lookup in parallel
  // runs; see Shard::lookups_served for why these must at least be atomic.
  mutable trace::ShardedCounter lookups_served_;
  trace::ShardedCounter leases_granted_;
  trace::Counter invalidations_sent_;
  trace::Counter invalidations_delivered_;
};

}  // namespace dcdo
